/**
 * @file
 * The sweep-as-a-service stack (src/service/ + util/json.hh).
 *
 * The contract under test is one schema, one encoder, byte-identical
 * everywhere:
 *
 *  - the strict JSON parser accepts RFC 8259 and nothing else
 *    (duplicate keys, deep nesting, lone surrogates, trailing
 *    garbage all fail with a reason);
 *  - the request codec round-trips: decode(encode(spec)) == spec and
 *    encode(decode(text)) is a normal form, unknown fields anywhere
 *    are ParseErrors NAMING the field, and a missing or foreign
 *    schema tag is a VersionMismatch, not a field-error flood;
 *  - a SweepService response is byte-identical to encoding a direct
 *    Explorer run of the same request — cold, warm, energy on or
 *    off — while the warm run's accounting shows every point served
 *    from the persistent store;
 *  - a live daemon serves N concurrent clients the same bytes, keeps
 *    a connection usable after a bad request (error event, no
 *    disconnect), and stop() drains cleanly and unlinks the socket.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "core/explorer.hh"
#include "service/client.hh"
#include "service/daemon.hh"
#include "service/sweep_codec.hh"
#include "service/sweep_service.hh"
#include "util/json.hh"
#include "util/supervisor.hh"
#include "util/units.hh"

using namespace tlc;
using namespace tlc::service;

namespace {

/// Short traces: every property under test is structural.
constexpr std::uint64_t kRefs = 50000;

std::string
tempPath(const std::string &name)
{
    std::string path = ::testing::TempDir() + name;
    std::remove(path.c_str());
    return path;
}

/** A small explicit-config request (4 points, one benchmark). */
SweepRequestSpec
smallSpec()
{
    SweepRequestSpec spec;
    spec.tag = "test";
    spec.benchmarks = {Benchmark::Gcc1};
    spec.explicitConfigs = true;
    spec.configs = {{8_KiB, 0}, {8_KiB, 64_KiB},
                    {16_KiB, 0}, {16_KiB, 128_KiB}};
    spec.traceRefs = kRefs;
    return spec;
}

/** What the service MUST produce: a direct engine run of @p spec,
 *  encoded with the same codec. */
std::string
directResponse(const SweepRequestSpec &spec)
{
    EvaluatorOptions eopts;
    eopts.traceRefs = spec.traceRefs;
    eopts.warmupFraction = spec.warmupFraction;
    eopts.traceFiles = spec.traceFiles;
    eopts.backend = spec.backend;
    eopts.pruneMargin = spec.pruneMargin;
    MissRateEvaluator ev(eopts);
    Explorer ex(ev);
    SweepRequest req;
    req.configs = spec.materializeConfigs();
    req.benchmarks = spec.benchmarks;
    FailureReport report;
    req.report = &report;
    std::vector<BenchmarkSweep> sweeps = ex.evaluateAll(req);

    SweepOutcome outcome;
    for (BenchmarkSweep &bs : sweeps) {
        ServedBenchmarkSweep sb;
        sb.benchmark = bs.benchmark;
        sb.points = std::move(bs.points);
        sb.envelope = Explorer::envelopeOf(sb.points);
        outcome.sweeps.push_back(std::move(sb));
    }
    outcome.failures = report.failures();
    return sweepResponseJson(spec, outcome);
}

StatusCode
decodeError(const std::string &text, std::string *message = nullptr)
{
    Expected<SweepRequestSpec> spec = sweepRequestFromJson(text);
    EXPECT_FALSE(spec.ok()) << "decoded: " << text;
    if (spec.ok())
        return StatusCode::Ok;
    if (message)
        *message = spec.status().message();
    return spec.status().code();
}

/** Patch one "key": ... line of a canonical request document. */
std::string
corrupt(std::string text, const std::string &from,
        const std::string &to)
{
    std::size_t at = text.find(from);
    EXPECT_NE(at, std::string::npos) << from;
    return text.replace(at, from.size(), to);
}

// ---------------------------------------------------------------
// util/json.hh: the strict RFC 8259 parser.

TEST(Json, ParsesScalarsArraysObjects)
{
    Expected<JsonValue> v = jsonParse(
        "{\"a\": [1, 2.5, -3e2], \"b\": {\"c\": true, \"d\": null},"
        " \"e\": \"x\\n\\u00e9\"}");
    ASSERT_TRUE(v.ok()) << v.status().toString();
    const JsonValue &root = v.value();
    ASSERT_TRUE(root.isObject());
    ASSERT_NE(root.find("a"), nullptr);
    EXPECT_EQ(root.find("a")->items().size(), 3u);
    EXPECT_DOUBLE_EQ(root.find("a")->items()[2].number(), -300.0);
    EXPECT_TRUE(root.find("b")->find("c")->boolean());
    EXPECT_TRUE(root.find("b")->find("d")->isNull());
    EXPECT_EQ(root.find("e")->str(), "x\n\xc3\xa9");
}

TEST(Json, RejectsDuplicateKeys)
{
    Expected<JsonValue> v = jsonParse("{\"a\": 1, \"a\": 2}");
    ASSERT_FALSE(v.ok());
    EXPECT_NE(v.status().message().find("duplicate"),
              std::string::npos);
}

TEST(Json, RejectsTrailingGarbageAndDepth)
{
    EXPECT_FALSE(jsonParse("{} x").ok());
    std::string deep(70, '['), close(70, ']');
    EXPECT_FALSE(jsonParse(deep + close).ok());
}

TEST(Json, SurrogatePairsDecodeLoneHalvesFail)
{
    Expected<JsonValue> ok = jsonParse("\"\\ud83d\\ude00\"");
    ASSERT_TRUE(ok.ok());
    EXPECT_EQ(ok.value().str(), "\xf0\x9f\x98\x80");
    EXPECT_FALSE(jsonParse("\"\\ud83d\"").ok());
    EXPECT_FALSE(jsonParse("\"\\ude00\"").ok());
}

TEST(Json, AsU64RejectsNonIntegers)
{
    EXPECT_EQ(jsonParse("42").value().asU64().value(), 42u);
    EXPECT_FALSE(jsonParse("-1").value().asU64().ok());
    EXPECT_FALSE(jsonParse("2.5").value().asU64().ok());
    EXPECT_FALSE(jsonParse("1e300").value().asU64().ok());
}

// ---------------------------------------------------------------
// The request codec: canonical round trip + strict rejection.

TEST(SweepCodec, RoundTripIsCanonical)
{
    SweepRequestSpec spec = smallSpec();
    spec.assume.offchipNs = 200.0;
    spec.assume.policy = TwoLevelPolicy::Exclusive;
    spec.energy = true;
    spec.threads = 2;
    std::string text = sweepRequestToJson(spec);

    Expected<SweepRequestSpec> back = sweepRequestFromJson(text);
    ASSERT_TRUE(back.ok()) << back.status().toString();
    EXPECT_EQ(sweepRequestToJson(back.value()), text);
    EXPECT_EQ(back.value().tag, "test");
    EXPECT_EQ(back.value().benchmarks, spec.benchmarks);
    EXPECT_EQ(back.value().configs, spec.configs);
    EXPECT_TRUE(back.value().explicitConfigs);
    EXPECT_EQ(back.value().assume.policy, TwoLevelPolicy::Exclusive);
    EXPECT_DOUBLE_EQ(back.value().assume.offchipNs, 200.0);
    EXPECT_TRUE(back.value().energy);
    EXPECT_EQ(back.value().threads, 2u);
}

TEST(SweepCodec, RoundTripEnumeratedSpaceAndTraceFiles)
{
    SweepRequestSpec spec;
    spec.benchmarks = {Benchmark::Gcc1, Benchmark::Espresso};
    spec.spaceTwoLevel = false;
    spec.traceRefs = 1234;
    spec.backend = MissBackend::Analytic;
    spec.traceFiles[Benchmark::Gcc1] = "/tmp/gcc1.trc";
    std::string text = sweepRequestToJson(spec);

    Expected<SweepRequestSpec> back = sweepRequestFromJson(text);
    ASSERT_TRUE(back.ok()) << back.status().toString();
    EXPECT_EQ(sweepRequestToJson(back.value()), text);
    EXPECT_FALSE(back.value().explicitConfigs);
    EXPECT_FALSE(back.value().spaceTwoLevel);
    EXPECT_EQ(back.value().backend, MissBackend::Analytic);
    EXPECT_EQ(back.value().traceFiles.at(Benchmark::Gcc1),
              "/tmp/gcc1.trc");
    // The enumerated space materializes to the paper's design space.
    EXPECT_FALSE(back.value().materializeConfigs().empty());
}

TEST(SweepCodec, SchemaTagIsPinned)
{
    std::string text = sweepRequestToJson(smallSpec());
    EXPECT_NE(text.find("\"tlc-sweep-request-v1\""),
              std::string::npos);

    EXPECT_EQ(decodeError("{\"tag\": \"x\"}"),
              StatusCode::VersionMismatch);
    EXPECT_EQ(decodeError(corrupt(text, kRequestSchema,
                                  "tlc-sweep-request-v2")),
              StatusCode::VersionMismatch);
}

TEST(SweepCodec, UnknownFieldsAreNamedErrors)
{
    std::string text = sweepRequestToJson(smallSpec());
    std::string message;
    EXPECT_EQ(decodeError(corrupt(text, "\"tag\"", "\"tags\""),
                          &message),
              StatusCode::ParseError);
    EXPECT_NE(message.find("unknown field 'tags'"), std::string::npos)
        << message;

    EXPECT_EQ(decodeError(corrupt(text, "\"offchip_ns\"",
                                  "\"offchipns\""),
                          &message),
              StatusCode::ParseError);
    EXPECT_NE(message.find("unknown field 'offchipns'"),
              std::string::npos)
        << message;
}

TEST(SweepCodec, RejectsBadValues)
{
    std::string text = sweepRequestToJson(smallSpec());
    EXPECT_EQ(decodeError("not json at all"), StatusCode::ParseError);
    EXPECT_EQ(decodeError(corrupt(text, "\"gcc1\"", "\"gcc99\"")),
              StatusCode::UnknownName);
    EXPECT_EQ(decodeError(corrupt(text, "\"inclusive\"",
                                  "\"sideways\"")),
              StatusCode::UnknownName);
    EXPECT_EQ(decodeError(corrupt(text, "\"backend\": \"exact\"",
                                  "\"backend\": \"psychic\"")),
              StatusCode::UnknownName);
    EXPECT_EQ(decodeError(corrupt(text, "\"threads\": 0",
                                  "\"threads\": 9999")),
              StatusCode::ParseError);
    EXPECT_EQ(decodeError(corrupt(text, "\"warmup_fraction\": 0.1",
                                  "\"warmup_fraction\": 1.5")),
              StatusCode::ParseError);
    EXPECT_EQ(decodeError(corrupt(text, "\"benchmarks\": [\"gcc1\"]",
                                  "\"benchmarks\": []")),
              StatusCode::ParseError);
}

TEST(SweepCodec, ConfigsAndSpaceAreExclusive)
{
    std::string text = sweepRequestToJson(smallSpec());
    std::string both = corrupt(
        text, "\"evaluator\"",
        "\"space\": {\"single_level\": true, \"two_level\": true},\n"
        "  \"evaluator\"");
    EXPECT_EQ(decodeError(both), StatusCode::ParseError);

    SweepRequestSpec enumerated;
    enumerated.benchmarks = {Benchmark::Gcc1};
    std::string empty = corrupt(
        sweepRequestToJson(enumerated),
        "{\"single_level\": true, \"two_level\": true}",
        "{\"single_level\": false, \"two_level\": false}");
    EXPECT_EQ(decodeError(empty), StatusCode::ParseError);
}

// ---------------------------------------------------------------
// SweepService: served == direct, warm == stored.

TEST(SweepService, ResponseMatchesDirectEngineRun)
{
    SweepRequestSpec spec = smallSpec();
    SweepService svc;
    ASSERT_TRUE(svc.init().ok());
    ServiceRun run = svc.run(spec);
    EXPECT_EQ(sweepResponseJson(spec, run.outcome),
              directResponse(spec));
    EXPECT_EQ(run.accounting.pointsPriced, spec.configs.size());
    EXPECT_EQ(run.accounting.failures, 0u);
}

TEST(SweepService, WarmRunServesEveryPointFromTheStore)
{
    SweepRequestSpec spec = smallSpec();
    SweepServiceOptions opts;
    opts.resultStorePath = tempPath("service_store.tlcr");
    SweepService svc(opts);
    ASSERT_TRUE(svc.init().ok());

    ServiceRun cold = svc.run(spec);
    EXPECT_EQ(cold.accounting.storeHits, 0u);
    EXPECT_EQ(cold.accounting.storeMisses, spec.configs.size());
    EXPECT_EQ(cold.accounting.storeAppends, spec.configs.size());

    ServiceRun warm = svc.run(spec);
    EXPECT_EQ(warm.accounting.storeHits, spec.configs.size());
    EXPECT_EQ(warm.accounting.storeMisses, 0u);
    EXPECT_EQ(warm.accounting.storeAppends, 0u);

    // Byte-identity warm vs cold vs standalone: the headline.
    EXPECT_EQ(sweepResponseJson(spec, warm.outcome),
              sweepResponseJson(spec, cold.outcome));
    EXPECT_EQ(sweepResponseJson(spec, warm.outcome),
              directResponse(spec));
    std::remove(opts.resultStorePath.c_str());
}

TEST(SweepService, EnergyRequestsCarryEnergyFields)
{
    SweepRequestSpec spec = smallSpec();
    spec.energy = true;
    SweepService svc;
    ASSERT_TRUE(svc.init().ok());
    ServiceRun run = svc.run(spec);
    ASSERT_EQ(run.outcome.sweeps.size(), 1u);
    const ServedBenchmarkSweep &sw = run.outcome.sweeps[0];
    ASSERT_EQ(sw.energyPerRef.size(), sw.points.size());
    for (double e : sw.energyPerRef)
        EXPECT_GT(e, 0.0);
    EXPECT_FALSE(sw.energyEnvelope.points().empty());

    std::string response = sweepResponseJson(spec, run.outcome);
    EXPECT_NE(response.find("\"energy_eu_per_ref\""),
              std::string::npos);
    EXPECT_NE(response.find("\"energy_envelope\""),
              std::string::npos);

    // The energy-free response for the same sweep has neither field.
    SweepRequestSpec plain = smallSpec();
    std::string bare = directResponse(plain);
    EXPECT_EQ(bare.find("\"energy_eu_per_ref\""), std::string::npos);
    // A served response parses as JSON (the encoder stays valid).
    EXPECT_TRUE(jsonParse(response).ok());
    EXPECT_TRUE(jsonParse(sweepStatsJson(run.accounting)).ok());
}

// ---------------------------------------------------------------
// The live daemon.

TEST(SweepDaemon, ConcurrentClientsGetIdenticalBytes)
{
    SweepRequestSpec spec = smallSpec();
    const std::string request = sweepRequestToJson(spec);
    const std::string expected = directResponse(spec);

    SweepServiceOptions opts;
    opts.resultStorePath = tempPath("daemon_store.tlcr");
    SweepService svc(opts);
    ASSERT_TRUE(svc.init().ok());
    SweepDaemon daemon(svc, tempPath("tlcd_test.sock"));
    ASSERT_TRUE(daemon.start().ok());

    constexpr std::size_t kClients = 3;
    std::vector<ServiceReply> replies(kClients);
    std::vector<std::thread> team;
    for (std::size_t i = 0; i < kClients; ++i) {
        team.emplace_back([&, i] {
            Expected<ServiceReply> r = submitSweepRequest(
                daemon.socketPath(), request);
            ASSERT_TRUE(r.ok()) << r.status().toString();
            replies[i] = std::move(r.value());
        });
    }
    for (auto &t : team)
        t.join();
    for (const ServiceReply &r : replies)
        EXPECT_EQ(r.responseJson, expected);

    // One more client after the rush: everything is in the store.
    Expected<ServiceReply> warm =
        submitSweepRequest(daemon.socketPath(), request);
    ASSERT_TRUE(warm.ok()) << warm.status().toString();
    EXPECT_EQ(warm.value().responseJson, expected);
    Expected<JsonValue> stats = jsonParse(warm.value().statsJson);
    ASSERT_TRUE(stats.ok());
    EXPECT_EQ(stats.value().find("store_hits")->asU64().value(),
              spec.configs.size());
    EXPECT_EQ(stats.value().find("store_misses")->asU64().value(), 0u);

    daemon.stop();
    EXPECT_FALSE(std::filesystem::exists(daemon.socketPath()));
    daemon.stop(); // idempotent
    std::remove(opts.resultStorePath.c_str());
}

TEST(SweepDaemon, BadRequestKeepsTheConnectionUsable)
{
    SweepService svc;
    ASSERT_TRUE(svc.init().ok());
    SweepDaemon daemon(svc, tempPath("tlcd_err.sock"));
    ASSERT_TRUE(daemon.start().ok());

    // Raw connection: a garbage frame, then a real request, without
    // reconnecting in between.
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::snprintf(addr.sun_path, sizeof(addr.sun_path), "%s",
                  daemon.socketPath().c_str());
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                        sizeof(addr)),
              0);

    auto readEvents = [&](auto done) {
        FrameReader frames;
        std::vector<std::string> events;
        char buf[64 * 1024];
        for (int spins = 0; spins < 300; ++spins) {
            pollfd p{fd, POLLIN, 0};
            if (::poll(&p, 1, 200) <= 0)
                continue;
            ssize_t n = ::read(fd, buf, sizeof(buf));
            ASSERT_GT(n, 0);
            ASSERT_TRUE(frames.feed(
                std::string_view(buf, static_cast<std::size_t>(n)),
                [&](std::string_view payload) {
                    events.emplace_back(payload);
                }));
            if (!events.empty() && done(events.back()))
                return;
        }
        FAIL() << "timed out waiting for daemon events";
    };

    ASSERT_TRUE(writeFrame(fd, "this is not a request").ok());
    readEvents([](const std::string &ev) {
        return ev.find("\"error\"") != std::string::npos;
    });

    SweepRequestSpec spec = smallSpec();
    ASSERT_TRUE(writeFrame(fd, sweepRequestToJson(spec)).ok());
    readEvents([](const std::string &ev) {
        return ev.find("\"stats\"") != std::string::npos;
    });

    ::close(fd);
    daemon.stop();
}

} // namespace
