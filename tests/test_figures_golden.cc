/**
 * @file
 * Golden-figure regression tests: the envelope data of two cheap
 * exhibits (fig03 single-level, fig05 two-level), computed on a
 * small synthetic workload, is pinned against checked-in golden
 * files under tests/golden/. Future performance work — parallelism,
 * cache-layout changes, memoization rewrites — cannot silently move
 * the paper's figures: any drift beyond a small numeric tolerance
 * fails here.
 *
 * To regenerate after an INTENTIONAL model change:
 *   TLC_UPDATE_GOLDEN=1 build/tests/test_parallel \
 *       --gtest_filter='GoldenFigures.*'
 * and commit the rewritten files with the change that explains them.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/explorer.hh"
#include "core/figures.hh"
#include "util/metrics.hh"

using namespace tlc;

namespace {

/// Small but representative: warmup engages and every design point
/// sees enough references that miss counts are stable.
constexpr std::uint64_t kGoldenRefs = 60000;

/// Relative tolerance on area/TPI. The simulation itself is
/// bit-deterministic; the slack only absorbs floating-point
/// differences across compilers and math libraries.
constexpr double kRelTol = 1e-6;

struct GoldenRow
{
    std::string label;
    double area = 0;
    double tpi = 0;
};

std::string
goldenPath(const std::string &name)
{
    return std::string(TLC_GOLDEN_DIR) + "/" + name;
}

std::vector<GoldenRow>
computeEnvelope(const std::string &figure_id, Benchmark b,
                bool two_level)
{
    const FigureSpec &spec = figureById(figure_id);
    MissRateEvaluator ev(kGoldenRefs);
    Explorer ex(ev);
    Envelope env = Explorer::envelopeOf(
        ex.sweep(b, spec.assume, true, two_level));
    std::vector<GoldenRow> rows;
    for (const auto &p : env.points())
        rows.push_back({p.label, p.area, p.tpi});
    return rows;
}

void
writeGolden(const std::string &path, const std::string &figure_id,
            const std::vector<GoldenRow> &rows)
{
    std::ofstream os(path);
    ASSERT_TRUE(os) << "cannot write " << path;
    os << "# golden envelope of " << figure_id << " at "
       << kGoldenRefs << " refs (label area_rbe tpi_ns)\n";
    char buf[128];
    for (const auto &r : rows) {
        std::snprintf(buf, sizeof buf, "%s %.12g %.12g\n",
                      r.label.c_str(), r.area, r.tpi);
        os << buf;
    }
}

std::vector<GoldenRow>
readGolden(const std::string &path)
{
    std::ifstream is(path);
    EXPECT_TRUE(is) << "missing golden file " << path
                    << " — regenerate with TLC_UPDATE_GOLDEN=1";
    std::vector<GoldenRow> rows;
    std::string line;
    while (std::getline(is, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream ls(line);
        GoldenRow r;
        ls >> r.label >> r.area >> r.tpi;
        EXPECT_FALSE(ls.fail()) << "bad golden line: " << line;
        rows.push_back(r);
    }
    return rows;
}

void
expectNearRel(double got, double want, const std::string &what)
{
    double tol = kRelTol * std::max(1.0, std::fabs(want));
    EXPECT_NEAR(got, want, tol) << what;
}

void
checkGolden(const std::string &figure_id, Benchmark b, bool two_level,
            const std::string &file)
{
    std::vector<GoldenRow> got =
        computeEnvelope(figure_id, b, two_level);
    ASSERT_FALSE(got.empty());

    std::string path = goldenPath(file);
    if (std::getenv("TLC_UPDATE_GOLDEN")) {
        writeGolden(path, figure_id, got);
        std::printf("regenerated %s (%zu rows)\n", path.c_str(),
                    got.size());
    }

    std::vector<GoldenRow> want = readGolden(path);
    ASSERT_EQ(got.size(), want.size())
        << figure_id << " envelope gained or lost corner points";
    for (std::size_t i = 0; i < got.size(); ++i) {
        SCOPED_TRACE(figure_id + " row " + std::to_string(i));
        EXPECT_EQ(got[i].label, want[i].label);
        expectNearRel(got[i].area, want[i].area, "area_rbe");
        expectNearRel(got[i].tpi, want[i].tpi, "tpi_ns");
    }
}

/** One fig05-style sweep of @p b under @p backend, at a chosen
 *  worker-team width; returns the priced points, input-ordered. */
std::vector<DesignPoint>
sweepWith(MissBackend backend, Benchmark b, unsigned threads)
{
    const FigureSpec &spec = figureById("fig05");
    EvaluatorOptions opts;
    opts.traceRefs = kGoldenRefs;
    opts.backend = backend;
    MissRateEvaluator ev(opts);
    Explorer ex(ev);
    SweepRequest req;
    req.configs = DesignSpace::enumerate(spec.assume);
    req.benchmarks = {b};
    req.threads = threads;
    auto sweeps = ex.evaluateAll(req);
    return sweeps.empty() ? std::vector<DesignPoint>{}
                          : sweeps.front().points;
}

Envelope
envelopeOfPoints(const std::vector<DesignPoint> &points)
{
    return Explorer::envelopeOf(points);
}

/** BIT-FOR-BIT envelope equality: labels and exact double compares,
 *  no tolerance — the pruned backend's contract is byte-identical
 *  output, not nearby output. */
void
expectEnvelopesIdentical(const Envelope &a, const Envelope &b)
{
    ASSERT_EQ(a.points().size(), b.points().size());
    for (std::size_t i = 0; i < a.points().size(); ++i) {
        SCOPED_TRACE("envelope row " + std::to_string(i));
        EXPECT_EQ(a.points()[i].label, b.points()[i].label);
        EXPECT_EQ(a.points()[i].area, b.points()[i].area);
        EXPECT_EQ(a.points()[i].tpi, b.points()[i].tpi);
    }
}

} // namespace

TEST(GoldenFigures, AnalyticPruneReproducesExactEnvelopeBitForBit)
{
    MetricCounter &prunedCtr =
        MetricsRegistry::global().counter("explore.analytic.pruned");
    MetricCounter &survivorsCtr =
        MetricsRegistry::global().counter(
            "explore.analytic.survivors");
    std::uint64_t prunedBefore = prunedCtr.value();
    std::uint64_t survivorsBefore = survivorsCtr.value();

    auto exact = sweepWith(MissBackend::Exact, Benchmark::Gcc1, 1);
    auto pruned =
        sweepWith(MissBackend::AnalyticPrune, Benchmark::Gcc1, 1);
    ASSERT_FALSE(exact.empty());
    ASSERT_FALSE(pruned.empty());

    // The pruning must really have skipped simulations, not
    // degenerated into an exact sweep with extra steps...
    std::uint64_t survived = survivorsCtr.value() - survivorsBefore;
    EXPECT_GT(prunedCtr.value() - prunedBefore, 0u);
    EXPECT_LT(survived, exact.size());
    EXPECT_EQ(pruned.size(), survived);

    // ...while reproducing the exact envelope bit for bit. Every
    // surviving point is also bit-identical to its exact twin — the
    // survivors were simulated, not estimated.
    expectEnvelopesIdentical(envelopeOfPoints(pruned),
                             envelopeOfPoints(exact));
    for (const auto &p : pruned) {
        const DesignPoint *twin = nullptr;
        for (const auto &e : exact) {
            if (e.config.label() == p.config.label())
                twin = &e;
        }
        ASSERT_NE(twin, nullptr) << p.config.label();
        EXPECT_EQ(p.tpi.tpi, twin->tpi.tpi) << p.config.label();
        EXPECT_EQ(p.areaRbe, twin->areaRbe) << p.config.label();
        EXPECT_EQ(p.miss.l2Misses, twin->miss.l2Misses)
            << p.config.label();
    }
}

TEST(GoldenFigures, AnalyticPruneIsDeterministicAcrossRunsAndThreads)
{
    auto first =
        sweepWith(MissBackend::AnalyticPrune, Benchmark::Espresso, 1);
    auto second =
        sweepWith(MissBackend::AnalyticPrune, Benchmark::Espresso, 1);
    auto threaded =
        sweepWith(MissBackend::AnalyticPrune, Benchmark::Espresso, 4);
    ASSERT_FALSE(first.empty());

    for (const auto *other : {&second, &threaded}) {
        ASSERT_EQ(first.size(), other->size());
        for (std::size_t i = 0; i < first.size(); ++i) {
            SCOPED_TRACE("point " + std::to_string(i));
            EXPECT_EQ(first[i].config.label(),
                      (*other)[i].config.label());
            EXPECT_EQ(first[i].areaRbe, (*other)[i].areaRbe);
            EXPECT_EQ(first[i].tpi.tpi, (*other)[i].tpi.tpi);
            EXPECT_EQ(first[i].miss.l1iMisses,
                      (*other)[i].miss.l1iMisses);
            EXPECT_EQ(first[i].miss.l2Misses,
                      (*other)[i].miss.l2Misses);
        }
    }
}

TEST(GoldenFigures, Fig03SingleLevelEspressoEnvelope)
{
    checkGolden("fig03", Benchmark::Espresso, /*two_level=*/false,
                "fig03_espresso.txt");
}

TEST(GoldenFigures, Fig05TwoLevelGccEnvelope)
{
    checkGolden("fig05", Benchmark::Gcc1, /*two_level=*/true,
                "fig05_gcc1.txt");
}
