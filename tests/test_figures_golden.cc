/**
 * @file
 * Golden-figure regression tests: the envelope data of two cheap
 * exhibits (fig03 single-level, fig05 two-level), computed on a
 * small synthetic workload, is pinned against checked-in golden
 * files under tests/golden/. Future performance work — parallelism,
 * cache-layout changes, memoization rewrites — cannot silently move
 * the paper's figures: any drift beyond a small numeric tolerance
 * fails here.
 *
 * To regenerate after an INTENTIONAL model change:
 *   TLC_UPDATE_GOLDEN=1 build/tests/test_parallel \
 *       --gtest_filter='GoldenFigures.*'
 * and commit the rewritten files with the change that explains them.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/explorer.hh"
#include "core/figures.hh"

using namespace tlc;

namespace {

/// Small but representative: warmup engages and every design point
/// sees enough references that miss counts are stable.
constexpr std::uint64_t kGoldenRefs = 60000;

/// Relative tolerance on area/TPI. The simulation itself is
/// bit-deterministic; the slack only absorbs floating-point
/// differences across compilers and math libraries.
constexpr double kRelTol = 1e-6;

struct GoldenRow
{
    std::string label;
    double area = 0;
    double tpi = 0;
};

std::string
goldenPath(const std::string &name)
{
    return std::string(TLC_GOLDEN_DIR) + "/" + name;
}

std::vector<GoldenRow>
computeEnvelope(const std::string &figure_id, Benchmark b,
                bool two_level)
{
    const FigureSpec &spec = figureById(figure_id);
    MissRateEvaluator ev(kGoldenRefs);
    Explorer ex(ev);
    Envelope env = Explorer::envelopeOf(
        ex.sweep(b, spec.assume, true, two_level));
    std::vector<GoldenRow> rows;
    for (const auto &p : env.points())
        rows.push_back({p.label, p.area, p.tpi});
    return rows;
}

void
writeGolden(const std::string &path, const std::string &figure_id,
            const std::vector<GoldenRow> &rows)
{
    std::ofstream os(path);
    ASSERT_TRUE(os) << "cannot write " << path;
    os << "# golden envelope of " << figure_id << " at "
       << kGoldenRefs << " refs (label area_rbe tpi_ns)\n";
    char buf[128];
    for (const auto &r : rows) {
        std::snprintf(buf, sizeof buf, "%s %.12g %.12g\n",
                      r.label.c_str(), r.area, r.tpi);
        os << buf;
    }
}

std::vector<GoldenRow>
readGolden(const std::string &path)
{
    std::ifstream is(path);
    EXPECT_TRUE(is) << "missing golden file " << path
                    << " — regenerate with TLC_UPDATE_GOLDEN=1";
    std::vector<GoldenRow> rows;
    std::string line;
    while (std::getline(is, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream ls(line);
        GoldenRow r;
        ls >> r.label >> r.area >> r.tpi;
        EXPECT_FALSE(ls.fail()) << "bad golden line: " << line;
        rows.push_back(r);
    }
    return rows;
}

void
expectNearRel(double got, double want, const std::string &what)
{
    double tol = kRelTol * std::max(1.0, std::fabs(want));
    EXPECT_NEAR(got, want, tol) << what;
}

void
checkGolden(const std::string &figure_id, Benchmark b, bool two_level,
            const std::string &file)
{
    std::vector<GoldenRow> got =
        computeEnvelope(figure_id, b, two_level);
    ASSERT_FALSE(got.empty());

    std::string path = goldenPath(file);
    if (std::getenv("TLC_UPDATE_GOLDEN")) {
        writeGolden(path, figure_id, got);
        std::printf("regenerated %s (%zu rows)\n", path.c_str(),
                    got.size());
    }

    std::vector<GoldenRow> want = readGolden(path);
    ASSERT_EQ(got.size(), want.size())
        << figure_id << " envelope gained or lost corner points";
    for (std::size_t i = 0; i < got.size(); ++i) {
        SCOPED_TRACE(figure_id + " row " + std::to_string(i));
        EXPECT_EQ(got[i].label, want[i].label);
        expectNearRel(got[i].area, want[i].area, "area_rbe");
        expectNearRel(got[i].tpi, want[i].tpi, "tpi_ns");
    }
}

} // namespace

TEST(GoldenFigures, Fig03SingleLevelEspressoEnvelope)
{
    checkGolden("fig03", Benchmark::Espresso, /*two_level=*/false,
                "fig03_espresso.txt");
}

TEST(GoldenFigures, Fig05TwoLevelGccEnvelope)
{
    checkGolden("fig05", Benchmark::Gcc1, /*two_level=*/true,
                "fig05_gcc1.txt");
}
