/**
 * @file
 * Robustness tests: invalid configurations must fail loudly (the
 * gem5 fatal/panic discipline), never silently compute nonsense.
 */

#include <gtest/gtest.h>

#include "cache/cache.hh"
#include "core/tpi.hh"
#include "timing/access_time.hh"
#include "util/args.hh"
#include "util/table.hh"

using namespace tlc;

namespace {

CacheParams
params(std::uint64_t size, std::uint32_t line, std::uint32_t assoc)
{
    CacheParams p;
    p.sizeBytes = size;
    p.lineBytes = line;
    p.assoc = assoc;
    return p;
}

} // namespace

TEST(Validation, NonPowerOfTwoCacheSizeIsFatal)
{
    EXPECT_EXIT(Cache(params(3000, 16, 1)),
                ::testing::ExitedWithCode(1), "power of two");
}

TEST(Validation, NonPowerOfTwoLineSizeIsFatal)
{
    EXPECT_EXIT(Cache(params(1024, 24, 1)),
                ::testing::ExitedWithCode(1), "power of two");
}

TEST(Validation, TinyLineSizeIsFatal)
{
    EXPECT_EXIT(Cache(params(1024, 2, 1)),
                ::testing::ExitedWithCode(1), "line size");
}

TEST(Validation, AssocLargerThanCacheIsFatal)
{
    // 1024 B / 16 B = 64 lines; 128 ways cannot divide them.
    EXPECT_EXIT(Cache(params(1024, 16, 128)),
                ::testing::ExitedWithCode(1), "");
}

TEST(Validation, FillOfResidentLinePanics)
{
    Cache c(params(1024, 16, 1));
    c.fill(0x100);
    EXPECT_DEATH(c.fill(0x100), "already-resident");
}

TEST(Validation, SetDirtyOnAbsentLinePanics)
{
    Cache c(params(1024, 16, 1));
    EXPECT_DEATH(c.setDirty(0x100), "non-resident");
}

TEST(Validation, TpiWithoutInstructionsPanics)
{
    HierarchyStats s;
    s.dataRefs = 10;
    TpiParams p;
    EXPECT_DEATH(computeTpi(s, p), "undefined");
}

TEST(Validation, TpiTwoLevelWithoutL2CyclePanics)
{
    HierarchyStats s;
    s.instrRefs = 10;
    TpiParams p;
    p.hasL2 = true;
    p.l2CycleNsRaw = 0;
    EXPECT_DEATH(computeTpi(s, p), "L2 cycle");
}

TEST(Validation, SingleLevelWithL2HitsPanics)
{
    HierarchyStats s;
    s.instrRefs = 10;
    s.l2Hits = 1;
    TpiParams p;
    p.hasL2 = false;
    EXPECT_DEATH(computeTpi(s, p), "cannot have L2 hits");
}

TEST(Validation, ArgParserRejectsBadInteger)
{
    const char *argv[] = {"prog", "--refs=abc"};
    ArgParser a(2, argv);
    EXPECT_EXIT(a.getInt("refs"), ::testing::ExitedWithCode(1),
                "expects an integer");
}

TEST(Validation, ArgParserRejectsBadBool)
{
    const char *argv[] = {"prog", "--flag=maybe"};
    ArgParser a(2, argv);
    EXPECT_EXIT(a.getBool("flag"), ::testing::ExitedWithCode(1),
                "expects a boolean");
}

TEST(Validation, TableRejectsOverfullRow)
{
    Table t({"one"});
    t.beginRow();
    t.cell("a");
    EXPECT_DEATH(t.cell("b"), "too many cells");
}

TEST(Validation, TableRejectsShortRowOnNextBegin)
{
    Table t({"a", "b"});
    t.beginRow();
    t.cell("only-one");
    EXPECT_DEATH(t.beginRow(), "expected 2");
}

TEST(Validation, GeometryTooNarrowForAddressIsFatal)
{
    // 8-bit addresses cannot index a 1 KB cache with 16 B lines.
    SramGeometry g{1024, 16, 1, 8, 64};
    EXPECT_DEATH(g.tagBits(), "address too narrow");
}
