/**
 * @file
 * Tests for the analytical access/cycle-time model: geometry
 * resolution, monotonicity, associativity penalty, the organization
 * search, and the paper's timing anchors (§2.3, Figs. 1-2).
 */

#include <gtest/gtest.h>

#include "timing/access_time.hh"
#include "util/units.hh"

using namespace tlc;

namespace {

SramGeometry
geom(std::uint64_t size, std::uint32_t assoc, std::uint32_t block = 16)
{
    SramGeometry g;
    g.sizeBytes = size;
    g.blockBytes = block;
    g.assoc = assoc;
    return g;
}

} // namespace

TEST(SramGeometry, TagBits)
{
    // 1 KB DM, 16 B lines: 64 sets -> 6 index + 4 offset = 22 tag.
    EXPECT_EQ(geom(1_KiB, 1).tagBits(), 22u);
    // 256 KB DM: 14 index + 4 offset = 14 tag.
    EXPECT_EQ(geom(256_KiB, 1).tagBits(), 14u);
    // 256 KB 4-way: 12 index + 4 offset = 16 tag.
    EXPECT_EQ(geom(256_KiB, 4).tagBits(), 16u);
}

TEST(SubarrayDims, DataArrayBasic)
{
    // 1 KB DM: 64 lines of 128 bits.
    SubarrayDims d = SubarrayDims::dataArray(geom(1_KiB, 1),
                                             ArrayOrganization{1, 1, 1});
    ASSERT_TRUE(d.valid);
    EXPECT_EQ(d.rows, 64u);
    EXPECT_EQ(d.cols, 128u);
}

TEST(SubarrayDims, DataArraySubdivision)
{
    // Nbl=2 halves the rows; Nwl=2 halves the columns; Nspd=2
    // doubles columns and halves rows.
    SubarrayDims d = SubarrayDims::dataArray(geom(4_KiB, 1),
                                             ArrayOrganization{2, 2, 2});
    ASSERT_TRUE(d.valid);
    EXPECT_EQ(d.rows, 64u);  // 256 / (2*2)
    EXPECT_EQ(d.cols, 128u); // 128 * 2 / 2
}

TEST(SubarrayDims, InvalidWhenNotDivisible)
{
    // 16 rows with Nbl=32 cannot divide evenly / gets too small.
    SubarrayDims d = SubarrayDims::dataArray(geom(1_KiB, 1),
                                             ArrayOrganization{1, 32, 1});
    EXPECT_FALSE(d.valid);
}

TEST(SubarrayDims, TagArrayIncludesStatusBits)
{
    // 1 KB DM: 64 sets x (22 tag + 2 status) bits.
    SubarrayDims d = SubarrayDims::tagArray(geom(1_KiB, 1),
                                            ArrayOrganization{1, 1, 1}, 2);
    ASSERT_TRUE(d.valid);
    EXPECT_EQ(d.rows, 64u);
    EXPECT_EQ(d.cols, 24u);
}

TEST(AccessTime, EvaluateMatchesOptimizeContract)
{
    AccessTimeModel m;
    SramGeometry g = geom(8_KiB, 1);
    TimingResult best = m.optimize(g);
    ASSERT_TRUE(best.valid);
    // Re-evaluating the chosen organization reproduces the numbers.
    TimingResult re = m.evaluate(g, best.dataOrg, best.tagOrg);
    EXPECT_DOUBLE_EQ(re.accessNs, best.accessNs);
    EXPECT_DOUBLE_EQ(re.cycleNs, best.cycleNs);
}

TEST(AccessTime, CycleExceedsAccess)
{
    AccessTimeModel m;
    for (std::uint64_t s = 1_KiB; s <= 256_KiB; s *= 2) {
        TimingResult r = m.optimize(geom(s, 1));
        EXPECT_GT(r.cycleNs, r.accessNs) << s;
    }
}

TEST(AccessTime, MonotoneInSize)
{
    AccessTimeModel m;
    double prev_access = 0, prev_cycle = 0;
    for (std::uint64_t s = 1_KiB; s <= 256_KiB; s *= 2) {
        TimingResult r = m.optimize(geom(s, 1));
        EXPECT_GE(r.accessNs + 1e-9, prev_access) << s;
        EXPECT_GE(r.cycleNs + 1e-9, prev_cycle) << s;
        prev_access = r.accessNs;
        prev_cycle = r.cycleNs;
    }
}

TEST(AccessTime, SetAssociativeSlowerThanDirectMapped)
{
    AccessTimeModel m;
    for (std::uint64_t s = 8_KiB; s <= 256_KiB; s *= 4) {
        double dm = m.optimize(geom(s, 1)).accessNs;
        double sa = m.optimize(geom(s, 4)).accessNs;
        EXPECT_GT(sa, dm) << s;
    }
}

TEST(AccessTime, OptimizeBeatsNaiveOrganization)
{
    AccessTimeModel m;
    SramGeometry g = geom(64_KiB, 1);
    TimingResult naive = m.evaluate(g, ArrayOrganization{1, 1, 1},
                                    ArrayOrganization{1, 1, 1});
    TimingResult best = m.optimize(g);
    ASSERT_TRUE(naive.valid);
    EXPECT_LE(best.cycleNs, naive.cycleNs);
}

TEST(AccessTime, ProcessScaleHalvesTimes)
{
    AccessTimeModel m05(TechnologyParams::scaled05um());
    AccessTimeModel m08(TechnologyParams::baseline08um());
    SramGeometry g = geom(16_KiB, 1);
    TimingResult a = m05.optimize(g);
    TimingResult b = m08.optimize(g);
    EXPECT_NEAR(a.cycleNs * 2.0, b.cycleNs, 1e-9);
    EXPECT_NEAR(a.accessNs * 2.0, b.accessNs, 1e-9);
}

// --- the paper's anchors --------------------------------------------

TEST(TimingAnchors, L1CycleSpreadNearOnePointEight)
{
    // §2.1: "a variation in machine cycle time of about 1.8X from
    // processors with 1KB caches through 256KB caches".
    AccessTimeModel m;
    double c1 = m.optimize(geom(1_KiB, 1)).cycleNs;
    double c256 = m.optimize(geom(256_KiB, 1)).cycleNs;
    double spread = c256 / c1;
    EXPECT_GT(spread, 1.5);
    EXPECT_LT(spread, 2.1);
}

TEST(TimingAnchors, AbsoluteCycleTimesPlausibleFor05um)
{
    AccessTimeModel m;
    double c4 = m.optimize(geom(4_KiB, 1)).cycleNs;
    EXPECT_GT(c4, 1.5);
    EXPECT_LT(c4, 3.5);
}

TEST(TimingAnchors, L2HitPenaltyMatchesPaperExample)
{
    // §2.5 example with Fig. 2's parameters (4 KB L1): the L2 cycle
    // rounds to 2 CPU cycles, so the L2-hit penalty is 5 cycles.
    AccessTimeModel m;
    double l1 = m.optimize(geom(4_KiB, 1)).cycleNs;
    for (std::uint64_t s = 8_KiB; s <= 256_KiB; s *= 2) {
        double l2 = m.optimize(geom(s, 4)).cycleNs;
        unsigned cycles = cyclesCeil(l2, l1);
        EXPECT_EQ(cycles, 2u) << "L2 size " << s;
        EXPECT_EQ(2 * cycles + 1, 5u);
    }
}

TEST(TimingAnchors, OnChipL2MuchFasterThanOffChip)
{
    // The motivating observation for Fig. 2: on-chip L1->L2 distance
    // is far smaller than L1 -> off-chip (50 ns).
    AccessTimeModel m;
    double l2 = m.optimize(geom(256_KiB, 4)).accessNs;
    EXPECT_LT(l2, 50.0 / 4);
}

TEST(TimingAnchors, BreakdownComponentsPositive)
{
    AccessTimeModel m;
    TimingResult r = m.optimize(geom(32_KiB, 4));
    EXPECT_GT(r.breakdown.decoder, 0);
    EXPECT_GT(r.breakdown.wordline, 0);
    EXPECT_GT(r.breakdown.bitline, 0);
    EXPECT_GT(r.breakdown.compare, 0);
    EXPECT_GT(r.breakdown.muxDriver, 0);
    EXPECT_GT(r.breakdown.output, 0);
    EXPECT_GT(r.breakdown.precharge, 0);
}

TEST(TimingAnchors, ToStringMentionsOrganization)
{
    AccessTimeModel m;
    std::string s = m.optimize(geom(8_KiB, 1)).toString();
    EXPECT_NE(s.find("Nwl="), std::string::npos);
    EXPECT_NE(s.find("access="), std::string::npos);
}
