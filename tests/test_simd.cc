/**
 * @file
 * Unit tests for the portable SIMD dispatch layer (util/simd.hh):
 * backend naming, cpuid-backed detection, TLC_SIMD-style override
 * parsing and resolution, the process-wide setSimdBackend override,
 * and the per-backend lane-kernel tables (cache/simd_lanes.hh) the
 * batch engine dispatches through. The *behavioural* equivalence of
 * the backends is proven differentially in test_batch_engine.cc;
 * this file pins the plumbing that selects between them.
 */

#include <gtest/gtest.h>

#include <vector>

#include "cache/simd_lanes.hh"
#include "util/simd.hh"

using namespace tlc;

namespace {

/** RAII: force a backend for one scope, restore env/detection after. */
struct BackendGuard
{
    explicit BackendGuard(SimdBackend b) { setSimdBackend(b); }
    ~BackendGuard() { clearSimdBackendOverride(); }
};

std::vector<SimdBackend>
allBackends()
{
    return {SimdBackend::Scalar, SimdBackend::Avx2, SimdBackend::Neon};
}

} // namespace

TEST(SimdDispatch, BackendNamesAreStable)
{
    EXPECT_STREQ(simdBackendName(SimdBackend::Scalar), "scalar");
    EXPECT_STREQ(simdBackendName(SimdBackend::Avx2), "avx2");
    EXPECT_STREQ(simdBackendName(SimdBackend::Neon), "neon");
}

TEST(SimdDispatch, ScalarIsAlwaysCompiledAndSupported)
{
    EXPECT_TRUE(simdBackendCompiled(SimdBackend::Scalar));
    EXPECT_TRUE(simdBackendSupported(SimdBackend::Scalar));
}

TEST(SimdDispatch, SupportImpliesCompiled)
{
    for (SimdBackend b : allBackends()) {
        if (simdBackendSupported(b)) {
            EXPECT_TRUE(simdBackendCompiled(b))
                << simdBackendName(b);
        }
    }
}

TEST(SimdDispatch, CpuidDetectionIsSupportedAndConsistent)
{
    // Whatever detection picks must actually be runnable here, and
    // it must agree with the ISA this binary was built for.
    SimdBackend detected = detectSimdBackend();
    EXPECT_TRUE(simdBackendSupported(detected));
#if defined(__x86_64__) || defined(__i386__)
    EXPECT_NE(detected, SimdBackend::Neon);
    if (simdBackendCompiled(SimdBackend::Avx2) &&
        __builtin_cpu_supports("avx2"))
        EXPECT_EQ(detected, SimdBackend::Avx2);
    else
        EXPECT_EQ(detected, SimdBackend::Scalar);
#elif defined(__aarch64__)
    // NEON is architectural on aarch64.
    EXPECT_EQ(detected, SimdBackend::Neon);
#endif
}

TEST(SimdDispatch, ParseAcceptsKnownNamesAndNative)
{
    ASSERT_TRUE(parseSimdBackend("scalar").ok());
    EXPECT_EQ(parseSimdBackend("scalar").value(), SimdBackend::Scalar);
    ASSERT_TRUE(parseSimdBackend("avx2").ok());
    EXPECT_EQ(parseSimdBackend("avx2").value(), SimdBackend::Avx2);
    ASSERT_TRUE(parseSimdBackend("neon").ok());
    EXPECT_EQ(parseSimdBackend("neon").value(), SimdBackend::Neon);
    ASSERT_TRUE(parseSimdBackend("native").ok());
    EXPECT_EQ(parseSimdBackend("native").value(), detectSimdBackend());
}

TEST(SimdDispatch, ParseRejectsUnknownNames)
{
    for (const char *bad : {"", "AVX2", "sse", "auto", "scalar "}) {
        Expected<SimdBackend> r = parseSimdBackend(bad);
        ASSERT_FALSE(r.ok()) << "'" << bad << "'";
        EXPECT_EQ(r.status().code(), StatusCode::InvalidConfig);
    }
}

TEST(SimdDispatch, ResolveDefaultsToDetection)
{
    SimdBackend detected = detectSimdBackend();
    Expected<SimdBackend> none = resolveSimdBackend(nullptr, detected);
    ASSERT_TRUE(none.ok());
    EXPECT_EQ(none.value(), detected);
    Expected<SimdBackend> empty = resolveSimdBackend("", detected);
    ASSERT_TRUE(empty.ok());
    EXPECT_EQ(empty.value(), detected);
    Expected<SimdBackend> native =
        resolveSimdBackend("native", detected);
    ASSERT_TRUE(native.ok());
    EXPECT_EQ(native.value(), detected);
}

TEST(SimdDispatch, ResolveHonoursSupportedOverride)
{
    // Forcing scalar must never degrade to detection: the CI
    // dispatch matrix relies on TLC_SIMD=X meaning X ran.
    Expected<SimdBackend> r =
        resolveSimdBackend("scalar", detectSimdBackend());
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value(), SimdBackend::Scalar);
}

TEST(SimdDispatch, ResolveRejectsImpossibleOverride)
{
    for (SimdBackend b : allBackends()) {
        if (simdBackendSupported(b))
            continue;
        Expected<SimdBackend> r =
            resolveSimdBackend(simdBackendName(b), detectSimdBackend());
        ASSERT_FALSE(r.ok()) << simdBackendName(b);
        EXPECT_EQ(r.status().code(), StatusCode::InvalidConfig);
    }
    Expected<SimdBackend> bogus =
        resolveSimdBackend("bogus", detectSimdBackend());
    ASSERT_FALSE(bogus.ok());
    EXPECT_EQ(bogus.status().code(), StatusCode::InvalidConfig);
}

TEST(SimdDispatch, SetBackendOverridesActiveUntilCleared)
{
    SimdBackend before = activeSimdBackend();
    {
        BackendGuard guard(SimdBackend::Scalar);
        EXPECT_EQ(activeSimdBackend(), SimdBackend::Scalar);
    }
    EXPECT_EQ(activeSimdBackend(), before);
}

TEST(SimdDispatch, LaneKernelsExistForEverySupportedBackend)
{
    for (SimdBackend b : allBackends()) {
        if (!simdBackendSupported(b))
            continue;
        const lanes::LaneKernels &k = lanes::laneKernelsFor(b);
        EXPECT_EQ(k.backend, b) << simdBackendName(b);
        EXPECT_NE(k.runShared, nullptr);
        EXPECT_NE(k.runStrict, nullptr);
    }
    // Distinct backends dispatch to distinct kernel code.
    if (simdBackendSupported(SimdBackend::Avx2)) {
        EXPECT_NE(lanes::laneKernelsFor(SimdBackend::Scalar).runShared,
                  lanes::laneKernelsFor(SimdBackend::Avx2).runShared);
    }
    if (simdBackendSupported(SimdBackend::Neon)) {
        EXPECT_NE(lanes::laneKernelsFor(SimdBackend::Scalar).runShared,
                  lanes::laneKernelsFor(SimdBackend::Neon).runShared);
    }
}

TEST(SimdDispatch, TagAllocatorAlignsAndZeroes)
{
    // Both allocator paths (small aligned-new, large mmap) must hand
    // back 64-byte-aligned, already-zero memory — the kernels rely on
    // all-zero meaning "every tag word invalid", and resize() on a
    // TagVector intentionally skips value-initialization.
    for (std::size_t n : {std::size_t{512},
                          (lanes::TagAllocator<std::uint64_t>::kMmapBytes /
                           sizeof(std::uint64_t)) * 2}) {
        lanes::TagVector v;
        v.resize(n);
        EXPECT_EQ(reinterpret_cast<std::uintptr_t>(v.data()) % 64, 0u);
        std::uint64_t acc = 0;
        for (std::uint64_t w : v)
            acc |= w;
        EXPECT_EQ(acc, 0u) << "n=" << n;
    }
}
