/**
 * @file
 * Tests for the fully-associative (CAM) timing and area paths.
 */

#include <gtest/gtest.h>

#include "area/area_model.hh"
#include "timing/access_time.hh"
#include "util/units.hh"

using namespace tlc;

namespace {

/** Fully-associative geometry for @p lines 16-byte entries. */
SramGeometry
fa(std::uint32_t lines)
{
    SramGeometry g;
    g.sizeBytes = static_cast<std::uint64_t>(lines) * 16;
    g.blockBytes = 16;
    g.assoc = lines;
    return g;
}

} // namespace

TEST(CamTiming, FullyAssociativeDetected)
{
    EXPECT_TRUE(fa(16).fullyAssociative());
    SramGeometry dm{1_KiB, 16, 1, 32, 64};
    EXPECT_FALSE(dm.fullyAssociative());
}

TEST(CamTiming, OptimizeTakesCamPath)
{
    AccessTimeModel m;
    TimingResult r = m.optimize(fa(16));
    ASSERT_TRUE(r.valid);
    EXPECT_GT(r.breakdown.compare, 0);
    EXPECT_GT(r.cycleNs, r.accessNs);
}

TEST(CamTiming, MonotoneInEntries)
{
    AccessTimeModel m;
    double prev = 0;
    for (std::uint32_t lines : {4u, 16u, 64u, 256u}) {
        double a = m.optimize(fa(lines)).accessNs;
        EXPECT_GT(a, prev) << lines;
        prev = a;
    }
}

TEST(CamTiming, SmallVictimBufferFasterThanBigL1)
{
    // A 16-entry victim buffer must be quicker than a 64 KB L1 —
    // otherwise victim caching would be pointless.
    AccessTimeModel m;
    double cam = m.optimize(fa(16)).accessNs;
    double l1 = m.optimize(SramGeometry{64_KiB, 16, 1, 32, 64}).accessNs;
    EXPECT_LT(cam, l1);
}

TEST(CamTiming, ProcessScaleApplies)
{
    AccessTimeModel m05(TechnologyParams::scaled05um());
    AccessTimeModel m08(TechnologyParams::baseline08um());
    EXPECT_NEAR(m05.optimize(fa(32)).cycleNs * 2.0,
                m08.optimize(fa(32)).cycleNs, 1e-9);
}

TEST(CamArea, ComputesWithoutOrganization)
{
    AreaModel a;
    SramGeometry g = fa(16);
    AreaBreakdown b = a.breakdown(g, ArrayOrganization{},
                                  ArrayOrganization{});
    EXPECT_GT(b.total(), 0);
    EXPECT_EQ(b.comparators, 0.0); // folded into CAM cells
    // Core data cells: 16 entries x 128 bits x 0.6 rbe.
    EXPECT_DOUBLE_EQ(b.dataCells, 16 * 128 * 0.6);
    // CAM tag cells are the larger cell type.
    EXPECT_DOUBLE_EQ(b.tagCells, 16 * (28 + 2) * 1.2);
}

TEST(CamArea, MonotoneInEntries)
{
    AreaModel a;
    double prev = 0;
    for (std::uint32_t lines : {4u, 16u, 64u}) {
        double area = a.area(fa(lines), ArrayOrganization{},
                             ArrayOrganization{});
        EXPECT_GT(area, prev);
        prev = area;
    }
}

TEST(CamArea, VictimBufferIsTinyNextToL1)
{
    // 16 lines of buffer should cost well under a 4 KB L1.
    AreaModel a;
    AccessTimeModel t;
    SramGeometry l1{4_KiB, 16, 1, 32, 64};
    TimingResult tr = t.optimize(l1);
    double l1_area = a.area(l1, tr.dataOrg, tr.tagOrg);
    double cam_area = a.area(fa(16), ArrayOrganization{},
                             ArrayOrganization{});
    EXPECT_LT(cam_area, l1_area / 4);
}
