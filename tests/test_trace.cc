/**
 * @file
 * Tests for trace records, buffers, and file I/O.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "trace/buffer.hh"
#include "trace/io.hh"
#include "trace/record.hh"

using namespace tlc;

TEST(TraceRecord, TypeChars)
{
    EXPECT_EQ(refTypeChar(RefType::Instr), 'i');
    EXPECT_EQ(refTypeChar(RefType::Load), 'l');
    EXPECT_EQ(refTypeChar(RefType::Store), 's');
    RefType t;
    EXPECT_TRUE(refTypeFromChar('i', t));
    EXPECT_EQ(t, RefType::Instr);
    EXPECT_TRUE(refTypeFromChar('s', t));
    EXPECT_EQ(t, RefType::Store);
    EXPECT_FALSE(refTypeFromChar('x', t));
}

TEST(TraceRecord, IsData)
{
    EXPECT_FALSE(isData(RefType::Instr));
    EXPECT_TRUE(isData(RefType::Load));
    EXPECT_TRUE(isData(RefType::Store));
}

TEST(TraceBuffer, CountsByType)
{
    TraceBuffer b;
    b.append(0x100, RefType::Instr);
    b.append(0x200, RefType::Load);
    b.append(0x300, RefType::Store);
    b.append(0x400, RefType::Instr);
    EXPECT_EQ(b.size(), 4u);
    EXPECT_EQ(b.instrRefs(), 2u);
    EXPECT_EQ(b.loadRefs(), 1u);
    EXPECT_EQ(b.storeRefs(), 1u);
    EXPECT_EQ(b.dataRefs(), 2u);
    EXPECT_EQ(b.totalRefs(), 4u);
}

TEST(TraceBuffer, ClearResetsEverything)
{
    TraceBuffer b;
    b.append(0x100, RefType::Load);
    b.clear();
    EXPECT_TRUE(b.empty());
    EXPECT_EQ(b.instrRefs(), 0u);
    EXPECT_EQ(b.dataRefs(), 0u);
}

TEST(TraceBuffer, IndexAndIteration)
{
    TraceBuffer b;
    b.append(0x10, RefType::Instr);
    b.append(0x20, RefType::Load);
    EXPECT_EQ(b[0].addr, 0x10u);
    EXPECT_EQ(b[1].type, RefType::Load);
    int n = 0;
    for (const auto &rec : b) {
        (void)rec;
        ++n;
    }
    EXPECT_EQ(n, 2);
}

namespace {

TraceBuffer
sampleTrace()
{
    TraceBuffer b;
    b.append(0x00400000, RefType::Instr);
    b.append(0x10000020, RefType::Load);
    b.append(0x10000040, RefType::Store);
    b.append(0xfffffff0, RefType::Instr);
    return b;
}

} // namespace

TEST(TraceIo, BinaryRoundTrip)
{
    TraceBuffer orig = sampleTrace();
    std::stringstream ss;
    writeBinaryTrace(ss, orig);
    TraceBuffer copy;
    ASSERT_TRUE(readBinaryTrace(ss, copy));
    ASSERT_EQ(copy.size(), orig.size());
    for (std::size_t i = 0; i < orig.size(); ++i)
        EXPECT_EQ(copy[i], orig[i]);
    EXPECT_EQ(copy.instrRefs(), orig.instrRefs());
    EXPECT_EQ(copy.storeRefs(), orig.storeRefs());
}

TEST(TraceIo, TextRoundTrip)
{
    TraceBuffer orig = sampleTrace();
    std::stringstream ss;
    writeTextTrace(ss, orig);
    TraceBuffer copy;
    ASSERT_TRUE(readTextTrace(ss, copy));
    ASSERT_EQ(copy.size(), orig.size());
    for (std::size_t i = 0; i < orig.size(); ++i)
        EXPECT_EQ(copy[i], orig[i]);
}

TEST(TraceIo, TextFormatIgnoresCommentsAndBlanks)
{
    std::stringstream ss("# header\n\ni 0x100\n# mid\nl 0x200\n");
    TraceBuffer b;
    ASSERT_TRUE(readTextTrace(ss, b));
    ASSERT_EQ(b.size(), 2u);
    EXPECT_EQ(b[0].addr, 0x100u);
    EXPECT_EQ(b[1].type, RefType::Load);
}

TEST(TraceIo, TextRejectsMalformedLines)
{
    std::stringstream ss("i 0x100\nz 0x200\n");
    TraceBuffer b;
    EXPECT_FALSE(readTextTrace(ss, b));
}

TEST(TraceIo, BinaryRejectsBadMagic)
{
    std::stringstream ss("NOPE....");
    TraceBuffer b;
    EXPECT_FALSE(readBinaryTrace(ss, b));
    EXPECT_TRUE(b.empty());
}

TEST(TraceIo, BinaryRejectsTruncation)
{
    TraceBuffer orig = sampleTrace();
    std::stringstream ss;
    writeBinaryTrace(ss, orig);
    std::string bytes = ss.str();
    bytes.resize(bytes.size() - 3); // cut mid-record
    std::stringstream cut(bytes);
    TraceBuffer b;
    EXPECT_FALSE(readBinaryTrace(cut, b));
}

TEST(TraceIo, EmptyTraceRoundTrips)
{
    TraceBuffer empty;
    std::stringstream ss;
    writeBinaryTrace(ss, empty);
    TraceBuffer copy;
    ASSERT_TRUE(readBinaryTrace(ss, copy));
    EXPECT_TRUE(copy.empty());
}

TEST(TraceIo, FileSaveLoad)
{
    TraceBuffer orig = sampleTrace();
    std::string path = ::testing::TempDir() + "/tlc_trace_test.bin";
    ASSERT_TRUE(saveTraceFile(path, orig));
    TraceBuffer copy;
    ASSERT_TRUE(loadTraceFile(path, copy));
    ASSERT_EQ(copy.size(), orig.size());
    for (std::size_t i = 0; i < orig.size(); ++i)
        EXPECT_EQ(copy[i], orig[i]);
    std::remove(path.c_str());
}

TEST(TraceIo, LoadMissingFileFails)
{
    TraceBuffer b;
    EXPECT_FALSE(loadTraceFile("/nonexistent/path/trace.bin", b));
}
