/**
 * @file
 * Sensitivity tests: the headline results must be properties of the
 * calibrated workload *structure*, not accidents of one random
 * seed. Trace variants regenerate each benchmark with independent
 * randomness but identical structural parameters.
 */

#include <gtest/gtest.h>

#include "cache/single_level.hh"
#include "cache/two_level.hh"
#include "trace/workload.hh"

using namespace tlc;

namespace {

constexpr std::uint64_t kRefs = 300000;

CacheParams
dm(std::uint64_t size)
{
    CacheParams p;
    p.sizeBytes = size;
    p.lineBytes = 16;
    p.assoc = 1;
    return p;
}

double
missRate(Benchmark b, unsigned variant, std::uint64_t l1)
{
    TraceBuffer t = Workloads::generate(b, kRefs, variant);
    SingleLevelHierarchy h(dm(l1));
    h.simulate(t, kRefs / 10);
    return h.stats().l1MissRate();
}

} // namespace

TEST(Sensitivity, VariantsAreDistinctTraces)
{
    TraceBuffer a = Workloads::generate(Benchmark::Gcc1, 10000, 0);
    TraceBuffer b = Workloads::generate(Benchmark::Gcc1, 10000, 1);
    ASSERT_EQ(a.size(), b.size());
    int same = 0;
    for (std::size_t i = 0; i < a.size(); ++i)
        same += (a[i] == b[i]);
    EXPECT_LT(same, 5000);
}

TEST(Sensitivity, VariantZeroIsCanonical)
{
    TraceBuffer a = Workloads::generate(Benchmark::Li, 10000);
    TraceBuffer b = Workloads::generate(Benchmark::Li, 10000, 0);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        ASSERT_EQ(a[i], b[i]);
}

TEST(Sensitivity, MissRatesStableAcrossVariants)
{
    // The 32 KB anchor miss rates must agree across three variants
    // to within 25 % relative — the calibration is structural.
    for (Benchmark b :
         {Benchmark::Espresso, Benchmark::Gcc1, Benchmark::Tomcatv}) {
        double m0 = missRate(b, 0, 32 * 1024);
        for (unsigned v : {1u, 2u}) {
            double mv = missRate(b, v, 32 * 1024);
            EXPECT_NEAR(mv, m0, 0.25 * m0)
                << Workloads::info(b).name << " variant " << v;
        }
    }
}

TEST(Sensitivity, ExclusiveGainHoldsAcrossVariants)
{
    // The paper's headline (exclusive <= inclusive off-chip misses)
    // must hold for every variant, not just the canonical trace.
    for (unsigned v : {0u, 1u, 2u}) {
        TraceBuffer t = Workloads::generate(Benchmark::Gcc1, kRefs, v);
        auto run = [&](TwoLevelPolicy pol) {
            CacheParams l2;
            l2.sizeBytes = 32 * 1024;
            l2.lineBytes = 16;
            l2.assoc = 4;
            l2.repl = ReplPolicy::Random;
            TwoLevelHierarchy h(dm(8 * 1024), l2, pol);
            h.simulate(t, kRefs / 10);
            return h.stats().l2Misses;
        };
        EXPECT_LE(run(TwoLevelPolicy::Exclusive),
                  run(TwoLevelPolicy::Inclusive))
            << "variant " << v;
    }
}

TEST(Sensitivity, SizeOrderingStableAcrossVariants)
{
    // Bigger caches never lose across variants.
    for (unsigned v : {0u, 1u, 2u}) {
        double m4 = missRate(Benchmark::Doduc, v, 4 * 1024);
        double m64 = missRate(Benchmark::Doduc, v, 64 * 1024);
        EXPECT_GT(m4, m64) << "variant " << v;
    }
}
