/**
 * @file
 * Property and invariant tests of the reuse-distance profiler
 * (core/reuse_profile.hh): histogram mass bookkeeping, miss-count
 * monotonicity, cold-miss accounting, warmup semantics, determinism,
 * and the exactness guarantees — fully-associative LRU queries,
 * direct-mapped ladder levels, and hierarchy-ladder cells must match
 * real Cache / TwoLevelHierarchy simulations bit for bit.
 */

#include <gtest/gtest.h>

#include <set>

#include "cache/cache.hh"
#include "cache/two_level.hh"
#include "core/evaluator.hh"
#include "core/reuse_profile.hh"
#include "trace/workload.hh"
#include "util/random.hh"

using namespace tlc;

namespace {

/**
 * A small mixed instruction/data trace with enough reuse to populate
 * every histogram bucket class: sequential instruction fetches over
 * a loop, data references over a Zipf-ish working set.
 */
TraceBuffer
craftedTrace(std::size_t n, std::uint32_t seed = 7)
{
    Pcg32 rng(seed, 0x51);
    TraceBuffer t;
    t.reserve(n);
    std::uint32_t pc = 0x1000;
    for (std::size_t i = 0; i < n; ++i) {
        if (i % 3 != 2) {
            // Instruction fetch walking a 512-entry loop.
            t.append(0x1000 + (pc % 2048), RefType::Instr);
            pc += 4;
        } else {
            std::uint32_t addr = 0x80000 + 16 * rng.nextBounded(512);
            t.append(addr, rng.nextBounded(4) == 0 ? RefType::Store
                                                   : RefType::Load);
        }
    }
    return t;
}

/**
 * Misses of one standalone Cache over one stream of @p trace
 * (Instr => instruction refs, Data => loads+stores, All => every
 * record), counted after @p warmup_refs whole-trace records.
 */
enum class Stream { Instr, Data, All };

std::uint64_t
simulateStandalone(const TraceBuffer &trace, const CacheParams &params,
                   Stream stream, std::uint64_t warmup_refs = 0)
{
    Cache cache(params);
    std::uint64_t misses = 0, index = 0;
    for (const TraceRecord &rec : trace) {
        const bool data = isData(rec.type);
        const bool mine = stream == Stream::All ||
                          (stream == Stream::Data) == data;
        if (mine && !cache.lookupAndTouch(rec.addr)) {
            cache.fill(rec.addr);
            if (index >= warmup_refs)
                ++misses;
        }
        ++index;
    }
    return misses;
}

} // namespace

// ---------------------------------------------------------------------
// Histogram invariants.
// ---------------------------------------------------------------------

TEST(ReuseHistogram, MassEqualsReferenceCount)
{
    TraceBuffer t = craftedTrace(6000);
    ReuseProfile p = ReuseProfile::profile(t, 16, 0);

    EXPECT_EQ(p.instr().refs(), t.instrRefs());
    EXPECT_EQ(p.data().refs(), t.dataRefs());
    EXPECT_EQ(p.unified().refs(), t.totalRefs());

    for (const ReuseHistogram *h :
         {&p.instr(), &p.data(), &p.unified()}) {
        std::uint64_t mass = h->coldMisses();
        for (std::uint64_t d = 0; d <= h->maxDistance(); ++d)
            mass += h->countAt(d);
        EXPECT_EQ(mass, h->refs());
        EXPECT_EQ(h->refs() - h->coldMisses(), h->finiteRefs());
    }
}

TEST(ReuseHistogram, MissesMonotoneNonIncreasingInCapacity)
{
    TraceBuffer t = craftedTrace(6000);
    ReuseProfile p = ReuseProfile::profile(t, 16, 0);

    for (const ReuseHistogram *h :
         {&p.instr(), &p.data(), &p.unified()}) {
        std::uint64_t prev = h->missesAtCapacity(1);
        EXPECT_LE(prev, h->refs());
        for (std::uint64_t c = 2; c <= h->maxDistance() + 2; ++c) {
            std::uint64_t m = h->missesAtCapacity(c);
            EXPECT_LE(m, prev) << "capacity " << c;
            EXPECT_GE(m, h->coldMisses());
            prev = m;
        }
        // Beyond the largest finite distance only cold misses remain.
        EXPECT_EQ(h->missesAtCapacity(h->maxDistance() + 1),
                  h->coldMisses());
    }
}

TEST(ReuseHistogram, ColdBucketEqualsDistinctLines)
{
    TraceBuffer t = craftedTrace(6000);
    ReuseProfile p = ReuseProfile::profile(t, 16, 0);

    std::set<std::uint64_t> instrLines, dataLines, allLines;
    for (const TraceRecord &rec : t) {
        std::uint64_t line = rec.addr >> 4;
        (isData(rec.type) ? dataLines : instrLines).insert(line);
        allLines.insert(line);
    }
    EXPECT_EQ(p.instr().coldMisses(), instrLines.size());
    EXPECT_EQ(p.data().coldMisses(), dataLines.size());
    EXPECT_EQ(p.unified().coldMisses(), allLines.size());
}

// ---------------------------------------------------------------------
// Exactness against real simulations.
// ---------------------------------------------------------------------

TEST(ReuseProfile, FullyAssociativeLruMatchesCacheExactly)
{
    TraceBuffer t = craftedTrace(4000);
    ReuseProfile p = ReuseProfile::profile(t, 16, 0);

    for (std::uint32_t capacity : {1u, 2u, 4u, 8u, 32u, 128u}) {
        CacheParams fa;
        fa.sizeBytes = std::uint64_t{16} * capacity;
        fa.lineBytes = 16;
        fa.assoc = capacity;
        fa.repl = ReplPolicy::LRU;
        EXPECT_EQ(p.unified().missesAtCapacity(capacity),
                  simulateStandalone(t, fa, Stream::All))
            << "capacity " << capacity << " lines";
        EXPECT_EQ(p.instr().missesAtCapacity(capacity),
                  simulateStandalone(t, fa, Stream::Instr))
            << "capacity " << capacity << " lines (instr)";
        // The sets==1 entry points agree with the integer path.
        EXPECT_EQ(p.unified().expectedMisses(1, capacity),
                  static_cast<double>(
                      p.unified().missesAtCapacity(capacity)));
        EXPECT_EQ(p.unified().expectedMisses(1, capacity,
                                             ReplPolicy::LRU),
                  static_cast<double>(
                      p.unified().missesAtCapacity(capacity)));
    }
}

TEST(ReuseProfile, DirectMappedLadderMatchesCacheExactly)
{
    TraceBuffer t = craftedTrace(4000);
    ReuseProfile p = ReuseProfile::profile(t, 16, 0);

    for (std::uint64_t sets : {1u, 4u, 16u, 64u, 256u}) {
        CacheParams dm;
        dm.sizeBytes = 16 * sets;
        dm.lineBytes = 16;
        dm.assoc = 1;
        dm.repl = ReplPolicy::Random; // irrelevant direct-mapped
        auto ladder = p.unified().directMappedMisses(sets);
        ASSERT_TRUE(ladder.has_value()) << sets << " sets";
        EXPECT_EQ(*ladder, simulateStandalone(t, dm, Stream::All))
            << sets << " sets";
        // The policy-dispatching entry point uses the same ladder.
        EXPECT_EQ(p.unified().expectedMisses(sets, 1,
                                             ReplPolicy::Random),
                  static_cast<double>(*ladder));
        auto instrLadder = p.instr().directMappedMisses(sets);
        ASSERT_TRUE(instrLadder.has_value());
        EXPECT_EQ(*instrLadder,
                  simulateStandalone(t, dm, Stream::Instr));
    }

    // Off-ladder queries decline instead of answering wrongly.
    EXPECT_FALSE(p.unified().directMappedMisses(3).has_value());
    EXPECT_FALSE(p.unified()
                     .directMappedMisses(std::uint64_t{1} << 40)
                     .has_value());
}

TEST(ReuseProfile, HierarchyLadderMatchesTwoLevelSimExactly)
{
    TraceBuffer t = craftedTrace(8000);
    const std::uint64_t warmup = 800;
    ReuseProfile p = ReuseProfile::profile(t, 16, warmup);

    SystemConfig config;
    config.l1Bytes = 1024;  // 64 sets, direct-mapped
    config.l2Bytes = 8192;  // 128 sets x 4 ways
    ASSERT_TRUE(config.check().ok());

    TwoLevelHierarchy hier(config.l1Params(), config.l2Params(),
                           config.assume.policy);
    hier.simulate(t, warmup);

    HierarchyStats analytic = p.statsFor(config);
    const HierarchyStats &exact = hier.stats();
    EXPECT_EQ(analytic.instrRefs, exact.instrRefs);
    EXPECT_EQ(analytic.dataRefs, exact.dataRefs);
    EXPECT_EQ(analytic.l1iMisses, exact.l1iMisses);
    EXPECT_EQ(analytic.l1dMisses, exact.l1dMisses);
    EXPECT_EQ(analytic.l2Misses, exact.l2Misses);
    EXPECT_EQ(analytic.l2Hits, exact.l2Hits);
}

TEST(ReuseProfile, SingleLevelStatsMatchSimExactly)
{
    TraceBuffer t = craftedTrace(8000);
    ReuseProfile p = ReuseProfile::profile(t, 16, 0);

    SystemConfig config;
    config.l1Bytes = 2048;
    config.l2Bytes = 0;
    HierarchyStats analytic = p.statsFor(config);

    EXPECT_EQ(analytic.l1iMisses,
              simulateStandalone(t, config.l1Params(), Stream::Instr));
    EXPECT_EQ(analytic.l1dMisses,
              simulateStandalone(t, config.l1Params(), Stream::Data));
    // Single-level convention: every L1 miss goes off-chip.
    EXPECT_EQ(analytic.l2Misses, analytic.l1Misses());
    EXPECT_EQ(analytic.l2Hits, 0u);
    EXPECT_EQ(analytic.swaps, 0u);
    EXPECT_EQ(analytic.offchipWritebacks, 0u);
}

// ---------------------------------------------------------------------
// Warmup semantics and determinism.
// ---------------------------------------------------------------------

TEST(ReuseProfile, WarmupPopulatesStacksWithoutCounting)
{
    // A B A with warmup 1: only B and the second A are counted, and
    // the second A must see a finite distance (1), proving the
    // warmup reference entered the reuse stack.
    TraceBuffer t;
    t.append(0x1000, RefType::Load);
    t.append(0x2000, RefType::Load);
    t.append(0x1000, RefType::Load);
    ReuseProfile p = ReuseProfile::profile(t, 16, 1);

    EXPECT_EQ(p.data().refs(), 2u);
    EXPECT_EQ(p.data().coldMisses(), 1u); // B only
    EXPECT_EQ(p.data().countAt(1), 1u);   // the re-touched A
    // A 2-line fully-associative cache holds both: only B misses.
    EXPECT_EQ(p.data().missesAtCapacity(2), 1u);
    // A 1-line cache also misses the second A.
    EXPECT_EQ(p.data().missesAtCapacity(1), 2u);
}

TEST(ReuseProfile, WarmupMatchesHierarchyContract)
{
    TraceBuffer t = craftedTrace(5000, 11);
    const std::uint64_t warmup = 500;
    ReuseProfile p = ReuseProfile::profile(t, 16, warmup);

    SystemConfig config;
    config.l1Bytes = 1024;
    config.l2Bytes = 4096;
    TwoLevelHierarchy hier(config.l1Params(), config.l2Params(),
                           config.assume.policy);
    hier.simulate(t, warmup);
    HierarchyStats analytic = p.statsFor(config);
    EXPECT_EQ(analytic.instrRefs, hier.stats().instrRefs);
    EXPECT_EQ(analytic.dataRefs, hier.stats().dataRefs);
    EXPECT_EQ(analytic.l1iMisses, hier.stats().l1iMisses);
    EXPECT_EQ(analytic.l1dMisses, hier.stats().l1dMisses);
    EXPECT_EQ(analytic.l2Misses, hier.stats().l2Misses);
}

TEST(ReuseProfile, ProfilesAreDeterministic)
{
    MissRateEvaluator ev(20000);
    auto trace = ev.tryTrace(Benchmark::Espresso);
    ASSERT_TRUE(trace.ok());

    ReuseProfile a = ReuseProfile::profile(*trace.value(), 16, 2000);
    ReuseProfile b = ReuseProfile::profile(*trace.value(), 16, 2000);

    ASSERT_EQ(a.unified().maxDistance(), b.unified().maxDistance());
    for (std::uint64_t d = 0; d <= a.unified().maxDistance(); ++d)
        ASSERT_EQ(a.unified().countAt(d), b.unified().countAt(d));

    for (const SystemConfig &c :
         DesignSpace::enumerate(SystemAssumptions{})) {
        HierarchyStats sa = a.statsFor(c);
        HierarchyStats sb = b.statsFor(c);
        ASSERT_EQ(sa.l1iMisses, sb.l1iMisses) << c.label();
        ASSERT_EQ(sa.l1dMisses, sb.l1dMisses) << c.label();
        ASSERT_EQ(sa.l2Misses, sb.l2Misses) << c.label();
        ASSERT_EQ(sa.l2Hits, sb.l2Hits) << c.label();
    }
}

// ---------------------------------------------------------------------
// Evaluator plumbing.
// ---------------------------------------------------------------------

TEST(ReuseProfile, EvaluatorSharesOneProfilePerShape)
{
    EvaluatorOptions opts;
    opts.traceRefs = 20000;
    opts.backend = MissBackend::Analytic;
    MissRateEvaluator ev(opts);

    auto p1 = ev.tryProfile(Benchmark::Gcc1, 16);
    auto p2 = ev.tryProfile(Benchmark::Gcc1, 16);
    ASSERT_TRUE(p1.ok());
    ASSERT_TRUE(p2.ok());
    EXPECT_EQ(p1.value(), p2.value()); // same immutable instance

    // A different L2 ladder shape is a different profile.
    auto p3 = ev.tryProfile(Benchmark::Gcc1, 16, 2, ReplPolicy::LRU);
    ASSERT_TRUE(p3.ok());
    EXPECT_NE(p1.value(), p3.value());
}

TEST(ReuseProfile, AnalyticBackendRoutesMissStats)
{
    EvaluatorOptions opts;
    opts.traceRefs = 20000;
    opts.backend = MissBackend::Analytic;
    MissRateEvaluator ev(opts);

    SystemConfig config;
    config.l1Bytes = 4096;
    config.l2Bytes = 32768;
    auto viaBackend = ev.tryMissStats(Benchmark::Li, config);
    auto direct = ev.tryAnalyticStats(Benchmark::Li, config);
    ASSERT_TRUE(viaBackend.ok());
    ASSERT_TRUE(direct.ok());
    EXPECT_EQ(viaBackend.value().l1iMisses, direct.value().l1iMisses);
    EXPECT_EQ(viaBackend.value().l2Misses, direct.value().l2Misses);
}
