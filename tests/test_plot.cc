/**
 * @file
 * Tests for the ASCII scatter plotter.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "util/plot.hh"

using namespace tlc;

TEST(ScatterPlot, EmptyPlotSaysSo)
{
    ScatterPlot p;
    std::ostringstream os;
    p.render(os);
    EXPECT_NE(os.str().find("empty"), std::string::npos);
}

TEST(ScatterPlot, MarkersAppear)
{
    ScatterPlot p(40, 10, false, false);
    p.addSeries("a", '*');
    p.addSeries("b", 'o');
    p.addPoint("a", 1, 1);
    p.addPoint("b", 10, 10);
    std::ostringstream os;
    p.render(os);
    std::string s = os.str();
    EXPECT_NE(s.find('*'), std::string::npos);
    EXPECT_NE(s.find('o'), std::string::npos);
    EXPECT_NE(s.find("legend:"), std::string::npos);
    EXPECT_NE(s.find("*=a"), std::string::npos);
}

TEST(ScatterPlot, ExtremesLandInCorners)
{
    ScatterPlot p(40, 10, false, false);
    p.addSeries("a", '*');
    p.addPoint("a", 0, 0);
    p.addPoint("a", 100, 100);
    std::ostringstream os;
    p.render(os);
    std::string s = os.str();
    // First plot row contains the max-y point; a later row has min.
    auto first_line = s.substr(0, s.find('\n'));
    EXPECT_NE(first_line.find('*'), std::string::npos);
}

TEST(ScatterPlot, LogAxesAcceptOnlyPositive)
{
    ScatterPlot p(40, 10, true, true);
    p.addSeries("a", '*');
    EXPECT_DEATH(p.addPoint("a", 0.0, 1.0), "positive");
}

TEST(ScatterPlot, UnknownSeriesPanics)
{
    ScatterPlot p;
    EXPECT_DEATH(p.addPoint("nope", 1, 1), "unknown series");
}

TEST(ScatterPlot, DuplicateSeriesPanics)
{
    ScatterPlot p;
    p.addSeries("a", '*');
    EXPECT_DEATH(p.addSeries("a", 'o'), "duplicate");
}

TEST(ScatterPlot, CountsPoints)
{
    ScatterPlot p;
    p.addSeries("a", '*');
    p.addPoint("a", 1, 1);
    p.addPoint("a", 2, 2);
    EXPECT_EQ(p.numPoints(), 2u);
}

TEST(ScatterPlot, AxisLabelsRendered)
{
    ScatterPlot p(40, 10, true, true);
    p.addSeries("a", '*');
    p.addPoint("a", 10000, 5);
    p.addPoint("a", 1000000, 10);
    p.setXLabel("area (rbe)");
    p.setYLabel("TPI (ns)");
    std::ostringstream os;
    p.render(os);
    std::string s = os.str();
    EXPECT_NE(s.find("area (rbe)"), std::string::npos);
    EXPECT_NE(s.find("TPI (ns)"), std::string::npos);
    // Human-readable bounds: 10k and 1.00M.
    EXPECT_NE(s.find("10k"), std::string::npos);
    EXPECT_NE(s.find("1.00M"), std::string::npos);
}

TEST(ScatterPlot, SinglePointDoesNotCrash)
{
    ScatterPlot p(40, 10, true, true);
    p.addSeries("a", '*');
    p.addPoint("a", 5, 5);
    std::ostringstream os;
    p.render(os);
    EXPECT_NE(os.str().find('*'), std::string::npos);
}
