/**
 * @file
 * Differential tests: the optimized Cache implementation checked
 * against simple, obviously-correct reference models on randomized
 * streams, and cross-model consistency properties between the
 * hierarchy flavours.
 */

#include <gtest/gtest.h>

#include <list>
#include <map>
#include <vector>

#include "cache/single_level.hh"
#include "cache/two_level.hh"
#include "trace/workload.hh"
#include "util/random.hh"

using namespace tlc;

namespace {

/**
 * Reference model: a direct-mapped cache as a plain map from set to
 * line address.
 */
class RefDirectMapped
{
  public:
    RefDirectMapped(std::uint64_t size, std::uint32_t line)
        : sets_(size / line), line_(line)
    {
    }

    bool access(std::uint64_t addr)
    {
        std::uint64_t la = addr / line_;
        std::uint64_t set = la % sets_;
        auto it = map_.find(set);
        if (it != map_.end() && it->second == la)
            return true;
        map_[set] = la;
        return false;
    }

  private:
    std::uint64_t sets_;
    std::uint32_t line_;
    std::map<std::uint64_t, std::uint64_t> map_;
};

/**
 * Reference model: set-associative LRU via per-set std::list.
 */
class RefSetAssocLru
{
  public:
    RefSetAssocLru(std::uint64_t size, std::uint32_t line,
                   std::uint32_t ways)
        : sets_(size / line / ways), ways_(ways), line_(line),
          lru_(sets_)
    {
    }

    bool access(std::uint64_t addr)
    {
        std::uint64_t la = addr / line_;
        auto &set = lru_[la % sets_];
        for (auto it = set.begin(); it != set.end(); ++it) {
            if (*it == la) {
                set.erase(it);
                set.push_front(la);
                return true;
            }
        }
        set.push_front(la);
        if (set.size() > ways_)
            set.pop_back();
        return false;
    }

  private:
    std::uint64_t sets_;
    std::uint32_t ways_;
    std::uint32_t line_;
    std::vector<std::list<std::uint64_t>> lru_;
};

CacheParams
params(std::uint64_t size, std::uint32_t assoc, ReplPolicy repl)
{
    CacheParams p;
    p.sizeBytes = size;
    p.lineBytes = 16;
    p.assoc = assoc;
    p.repl = repl;
    return p;
}

} // namespace

TEST(Differential, DirectMappedMatchesReference)
{
    Cache c(params(4096, 1, ReplPolicy::Random));
    RefDirectMapped ref(4096, 16);
    Pcg32 rng(21);
    for (int i = 0; i < 100000; ++i) {
        std::uint64_t addr = rng.nextBounded(1 << 16);
        bool hit = c.lookupAndTouch(addr);
        if (!hit)
            c.fill(addr);
        ASSERT_EQ(hit, ref.access(addr)) << "ref " << i;
    }
}

class DifferentialLru
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, int>>
{
};

TEST_P(DifferentialLru, SetAssocLruMatchesReference)
{
    auto [size, ways] = GetParam();
    Cache c(params(size, ways, ReplPolicy::LRU));
    RefSetAssocLru ref(size, 16, ways);
    Pcg32 rng(33 + ways);
    for (int i = 0; i < 60000; ++i) {
        std::uint64_t addr = rng.nextBounded(1 << 16);
        bool hit = c.lookupAndTouch(addr);
        if (!hit)
            c.fill(addr);
        ASSERT_EQ(hit, ref.access(addr)) << "ref " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, DifferentialLru,
    ::testing::Combine(::testing::Values(1024, 4096, 16384),
                       ::testing::Values(2, 4, 8)));

// A two-level hierarchy whose L2 is so large it never evicts must
// show exactly the same L1 behaviour as the single-level system,
// and its L2 misses must equal the number of distinct lines.
TEST(Differential, HugeL2MatchesSingleLevelL1Behaviour)
{
    TraceBuffer t = Workloads::generate(Benchmark::Doduc, 120000);

    SingleLevelHierarchy single(params(4096, 1, ReplPolicy::Random));
    // 16 MB L2: larger than any workload footprint.
    CacheParams l2 = params(16 * 1024 * 1024, 4, ReplPolicy::Random);
    TwoLevelHierarchy two(params(4096, 1, ReplPolicy::Random), l2,
                          TwoLevelPolicy::Inclusive);
    single.simulate(t);
    two.simulate(t);

    EXPECT_EQ(single.stats().l1iMisses, two.stats().l1iMisses);
    EXPECT_EQ(single.stats().l1dMisses, two.stats().l1dMisses);
    // Every L2 miss is compulsory (the L2 never evicts).
    std::set<std::uint64_t> lines;
    for (const auto &rec : t)
        lines.insert(rec.addr >> 4);
    EXPECT_EQ(two.stats().l2Misses, lines.size());
}

// Inclusive and exclusive policies must see identical L1 behaviour
// (the L1s are managed identically; only L2 content differs).
TEST(Differential, L1MissesIndependentOfL2Policy)
{
    TraceBuffer t = Workloads::generate(Benchmark::Li, 120000);
    auto run = [&](TwoLevelPolicy pol) {
        TwoLevelHierarchy h(params(2048, 1, ReplPolicy::Random),
                            params(16384, 4, ReplPolicy::Random), pol);
        h.simulate(t);
        return h.stats();
    };
    HierarchyStats inc = run(TwoLevelPolicy::Inclusive);
    HierarchyStats strict = run(TwoLevelPolicy::StrictInclusive);
    HierarchyStats excl = run(TwoLevelPolicy::Exclusive);
    EXPECT_EQ(inc.l1iMisses, excl.l1iMisses);
    EXPECT_EQ(inc.l1dMisses, excl.l1dMisses);
    // Strict inclusion may add L1 misses (back-invalidations) but
    // never removes any.
    EXPECT_GE(strict.l1iMisses, inc.l1iMisses);
    EXPECT_GE(strict.l1dMisses, inc.l1dMisses);
}

// L2 hit + miss counts always partition L1 misses, for every policy
// and geometry (randomized property).
TEST(Differential, L2CountsPartitionL1Misses)
{
    Pcg32 rng(55);
    for (int iter = 0; iter < 12; ++iter) {
        std::uint64_t l1 = 1024u << rng.nextBounded(3);
        std::uint64_t l2 = l1 * (2u << rng.nextBounded(3));
        TwoLevelPolicy pol = static_cast<TwoLevelPolicy>(
            rng.nextBounded(3));
        TwoLevelHierarchy h(params(l1, 1, ReplPolicy::Random),
                            params(l2, 4, ReplPolicy::Random), pol);
        Pcg32 addrs(iter);
        for (int i = 0; i < 20000; ++i) {
            RefType ty = static_cast<RefType>(addrs.nextBounded(3));
            h.access({addrs.nextBounded(1 << 18), ty});
        }
        const HierarchyStats &s = h.stats();
        ASSERT_EQ(s.l2Hits + s.l2Misses, s.l1Misses())
            << twoLevelPolicyName(pol);
        ASSERT_EQ(s.totalRefs(), 20000u);
    }
}

// Total lines resident on-chip never exceed the physical capacity.
TEST(Differential, ResidencyNeverExceedsCapacity)
{
    for (TwoLevelPolicy pol :
         {TwoLevelPolicy::Inclusive, TwoLevelPolicy::Exclusive}) {
        TwoLevelHierarchy h(params(1024, 1, ReplPolicy::Random),
                            params(4096, 4, ReplPolicy::Random), pol);
        Pcg32 rng(77);
        for (int i = 0; i < 30000; ++i) {
            h.access({rng.nextBounded(1 << 16), RefType::Load});
            if (i % 500 == 0) {
                ASSERT_LE(h.icache().residentLines(), 64u);
                ASSERT_LE(h.dcache().residentLines(), 64u);
                ASSERT_LE(h.l2cache().residentLines(), 256u);
            }
        }
    }
}
