/**
 * @file
 * Differential tests for the single-pass multi-configuration engine:
 * every SimGroup lane flavour (flat direct-mapped single-level, flat
 * two-level inclusive/strict-inclusive, generic associative L1,
 * exclusive, victim cache, stream buffer) must produce HierarchyStats
 * byte-identical to running the corresponding Hierarchy alone over
 * the same records — including replacement RNG draws, LRU/FIFO stamp
 * ordering and write-back accounting — across warmup boundaries. The
 * SimdBackendDifferential cases re-prove the lane equivalences under
 * EVERY SIMD backend this host can run (forced via setSimdBackend),
 * so scalar and vector kernels are pinned to the same counters the
 * solo hierarchies produce. On top sit the evaluator-level
 * equivalences: tryMissStatsBatch vs tryMissStats, the SweepRequest
 * entry point vs per-benchmark evaluateAll, and the FailureReport
 * snapshot contract.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <utility>
#include <vector>

#include "cache/single_level.hh"
#include "cache/stream_buffer.hh"
#include "cache/two_level.hh"
#include "cache/victim_cache.hh"
#include "core/batch_engine.hh"
#include "core/explorer.hh"
#include "util/parallel.hh"
#include "util/simd.hh"
#include "util/units.hh"

using namespace tlc;

namespace {

/// Long enough that warmup, L2 activity, random replacement and
/// write-backs all engage; short enough to keep the suite quick.
constexpr std::uint64_t kRefs = 20000;
constexpr std::uint64_t kWarmup = 2000;

const TraceBuffer &
sharedTrace()
{
    static TraceBuffer t = Workloads::generate(Benchmark::Gcc1, kRefs);
    return t;
}

/** Bitwise equality of every statistics field. */
void
expectSameStats(const HierarchyStats &a, const HierarchyStats &b)
{
    EXPECT_EQ(a.instrRefs, b.instrRefs);
    EXPECT_EQ(a.dataRefs, b.dataRefs);
    EXPECT_EQ(a.l1iMisses, b.l1iMisses);
    EXPECT_EQ(a.l1dMisses, b.l1dMisses);
    EXPECT_EQ(a.l2Hits, b.l2Hits);
    EXPECT_EQ(a.l2Misses, b.l2Misses);
    EXPECT_EQ(a.swaps, b.swaps);
    EXPECT_EQ(a.offchipWritebacks, b.offchipWritebacks);
}

/** Reference result: one Hierarchy simulated alone. */
template <typename H, typename... Args>
HierarchyStats
solo(std::uint64_t warmup, Args &&...args)
{
    H h(std::forward<Args>(args)...);
    h.simulate(sharedTrace(), warmup);
    return h.stats();
}

/** Every SIMD backend this host can actually run (scalar always). */
std::vector<SimdBackend>
runnableBackends()
{
    std::vector<SimdBackend> v;
    for (SimdBackend b :
         {SimdBackend::Scalar, SimdBackend::Avx2, SimdBackend::Neon})
        if (simdBackendSupported(b))
            v.push_back(b);
    return v;
}

/** RAII: force a backend for one scope, restore detection after. */
struct BackendGuard
{
    explicit BackendGuard(SimdBackend b) { setSimdBackend(b); }
    ~BackendGuard() { clearSimdBackendOverride(); }
};

} // namespace

TEST(SimGroupDifferential, DmSingleLevelMatchesHierarchy)
{
    SimGroup group;
    std::vector<CacheParams> shapes;
    for (std::uint64_t size : {1_KiB, 4_KiB, 32_KiB})
        for (std::uint32_t line : {16u, 32u}) {
            CacheParams p;
            p.sizeBytes = size;
            p.lineBytes = line;
            shapes.push_back(p);
        }
    for (const CacheParams &p : shapes) {
        std::size_t lane = group.addSingleLevel(p);
        EXPECT_TRUE(group.laneIsFlat(lane));
    }
    BatchEngine::run(sharedTrace(), kWarmup, group);
    for (std::size_t i = 0; i < shapes.size(); ++i) {
        SCOPED_TRACE("lane " + std::to_string(i));
        expectSameStats(group.stats(i),
                        solo<SingleLevelHierarchy>(kWarmup, shapes[i]));
    }
}

TEST(SimGroupDifferential, AssociativeL1TakesGenericPathAndMatches)
{
    CacheParams p;
    p.sizeBytes = 8_KiB;
    p.assoc = 4;
    p.repl = ReplPolicy::LRU;
    SimGroup group;
    std::size_t lane = group.addSingleLevel(p);
    EXPECT_FALSE(group.laneIsFlat(lane));
    EXPECT_EQ(group.flatLaneCount(), 0u);
    BatchEngine::run(sharedTrace(), kWarmup, group);
    expectSameStats(group.stats(lane),
                    solo<SingleLevelHierarchy>(kWarmup, p));
}

TEST(SimGroupDifferential, FlatTwoLevelMatchesHierarchy)
{
    CacheParams l1;
    l1.sizeBytes = 2_KiB;
    struct Shape
    {
        std::uint32_t l2Assoc;
        ReplPolicy repl;
        TwoLevelPolicy policy;
    };
    std::vector<Shape> shapes;
    for (std::uint32_t assoc : {1u, 4u})
        for (ReplPolicy repl :
             {ReplPolicy::Random, ReplPolicy::LRU, ReplPolicy::FIFO})
            for (TwoLevelPolicy policy : {TwoLevelPolicy::Inclusive,
                                          TwoLevelPolicy::StrictInclusive})
                shapes.push_back({assoc, repl, policy});

    SimGroup group;
    std::vector<CacheParams> l2s;
    for (const Shape &s : shapes) {
        CacheParams l2;
        l2.sizeBytes = 16_KiB;
        l2.assoc = s.l2Assoc;
        l2.repl = s.repl;
        l2s.push_back(l2);
        std::size_t lane = group.addTwoLevel(l1, l2, s.policy);
        EXPECT_TRUE(group.laneIsFlat(lane));
    }
    BatchEngine::run(sharedTrace(), kWarmup, group);
    for (std::size_t i = 0; i < shapes.size(); ++i) {
        SCOPED_TRACE("lane " + std::to_string(i));
        expectSameStats(group.stats(i),
                        solo<TwoLevelHierarchy>(kWarmup, l1, l2s[i],
                                                shapes[i].policy));
    }
}

TEST(SimGroupDifferential, ExclusiveTakesGenericPathAndMatches)
{
    CacheParams l1;
    l1.sizeBytes = 2_KiB;
    CacheParams l2;
    l2.sizeBytes = 8_KiB;
    l2.assoc = 4;
    SimGroup group;
    std::size_t lane =
        group.addTwoLevel(l1, l2, TwoLevelPolicy::Exclusive);
    EXPECT_FALSE(group.laneIsFlat(lane));
    BatchEngine::run(sharedTrace(), kWarmup, group);
    expectSameStats(group.stats(lane),
                    solo<TwoLevelHierarchy>(kWarmup, l1, l2,
                                            TwoLevelPolicy::Exclusive));
}

TEST(SimGroupDifferential, VictimAndStreamBufferLanesMatch)
{
    CacheParams l1;
    l1.sizeBytes = 4_KiB;
    SimGroup group;
    std::size_t victim_lane = group.addHierarchy(
        std::make_unique<VictimCacheHierarchy>(l1, 4));
    std::size_t stream_lane = group.addHierarchy(
        std::make_unique<StreamBufferHierarchy>(l1, 4, 4));
    EXPECT_FALSE(group.laneIsFlat(victim_lane));
    EXPECT_FALSE(group.laneIsFlat(stream_lane));
    BatchEngine::run(sharedTrace(), kWarmup, group);
    expectSameStats(group.stats(victim_lane),
                    solo<VictimCacheHierarchy>(kWarmup, l1, 4));
    expectSameStats(group.stats(stream_lane),
                    solo<StreamBufferHierarchy>(kWarmup, l1, 4, 4));
}

TEST(SimGroupDifferential, MixedLaneGroupMatchesAtEveryWarmup)
{
    // Warmup boundaries: none, mid-trace, the whole trace, and past
    // the end (Hierarchy::simulate clamps — so must BatchEngine).
    for (std::uint64_t warmup :
         {std::uint64_t(0), kRefs / 2, kRefs, kRefs + 5000}) {
        SCOPED_TRACE("warmup " + std::to_string(warmup));
        CacheParams l1;
        l1.sizeBytes = 2_KiB;
        CacheParams l2;
        l2.sizeBytes = 16_KiB;
        l2.assoc = 4;
        SimGroup group;
        group.addSingleLevel(l1);
        group.addTwoLevel(l1, l2, TwoLevelPolicy::Inclusive);
        BatchEngine::run(sharedTrace(), warmup, group);
        expectSameStats(group.stats(0),
                        solo<SingleLevelHierarchy>(warmup, l1));
        expectSameStats(group.stats(1),
                        solo<TwoLevelHierarchy>(warmup, l1, l2,
                                                TwoLevelPolicy::Inclusive));
    }
}

TEST(SimGroupDifferential, ResultsIndependentOfLaneOrder)
{
    // A lane's counters must not depend on what else rides in the
    // group (full lane independence — the property that makes batch
    // partitioning invisible to results).
    CacheParams small;
    small.sizeBytes = 1_KiB;
    CacheParams big;
    big.sizeBytes = 64_KiB;
    SimGroup ab, ba;
    ab.addSingleLevel(small);
    ab.addSingleLevel(big);
    ba.addSingleLevel(big);
    ba.addSingleLevel(small);
    BatchEngine::run(sharedTrace(), kWarmup, ab);
    BatchEngine::run(sharedTrace(), kWarmup, ba);
    expectSameStats(ab.stats(0), ba.stats(1));
    expectSameStats(ab.stats(1), ba.stats(0));
}

TEST(SimdBackendDifferential, EveryBackendMatchesSoloAcrossFlavours)
{
    // The canonical lane-flavour zoo, solo-simulated once; then the
    // same group is rebuilt and run under every backend this host
    // can execute. Any vector-kernel divergence from the scalar
    // reference semantics shows up as a counter mismatch here.
    CacheParams l1;
    l1.sizeBytes = 2_KiB;
    struct Shape
    {
        std::uint32_t l2Assoc;
        ReplPolicy repl;
        TwoLevelPolicy policy;
    };
    std::vector<Shape> shapes;
    for (std::uint32_t assoc : {1u, 4u})
        for (ReplPolicy repl :
             {ReplPolicy::Random, ReplPolicy::LRU, ReplPolicy::FIFO})
            for (TwoLevelPolicy policy : {TwoLevelPolicy::Inclusive,
                                          TwoLevelPolicy::StrictInclusive})
                shapes.push_back({assoc, repl, policy});

    std::vector<CacheParams> l2s;
    std::vector<HierarchyStats> refs;
    for (const Shape &s : shapes) {
        CacheParams l2;
        l2.sizeBytes = 16_KiB;
        l2.assoc = s.l2Assoc;
        l2.repl = s.repl;
        l2s.push_back(l2);
        refs.push_back(
            solo<TwoLevelHierarchy>(kWarmup, l1, l2, s.policy));
    }
    HierarchyStats single_ref = solo<SingleLevelHierarchy>(kWarmup, l1);

    for (SimdBackend backend : runnableBackends()) {
        SCOPED_TRACE(simdBackendName(backend));
        BackendGuard guard(backend);
        SimGroup group;
        std::size_t single = group.addSingleLevel(l1);
        std::vector<std::size_t> lanes;
        for (std::size_t i = 0; i < shapes.size(); ++i)
            lanes.push_back(
                group.addTwoLevel(l1, l2s[i], shapes[i].policy));
        BatchEngine::run(sharedTrace(), kWarmup, group);
        expectSameStats(group.stats(single), single_ref);
        for (std::size_t i = 0; i < shapes.size(); ++i) {
            SCOPED_TRACE("lane " + std::to_string(i));
            expectSameStats(group.stats(lanes[i]), refs[i]);
        }
    }
}

TEST(SimdBackendDifferential, StrictLaneCountsSpanVectorWidths)
{
    // Strict-inclusive blocks answer all lanes' L1 probes with one
    // vector sweep over an interleaved row, so the lane count is the
    // vector trip count: 1 and 7 exercise sub-width tails, 8 and 9
    // the exact-width and width-plus-one boundaries, 32 several full
    // vectors per row. Each lane gets a distinct L2 so a lane-index
    // mixup cannot cancel out.
    CacheParams l1;
    l1.sizeBytes = 1_KiB;
    auto l2For = [](std::size_t i) {
        CacheParams l2;
        l2.sizeBytes = 8_KiB << (i % 4);
        l2.assoc = (i % 2) ? 4 : 1;
        l2.repl = (i % 3 == 0)   ? ReplPolicy::Random
                  : (i % 3 == 1) ? ReplPolicy::LRU
                                 : ReplPolicy::FIFO;
        return l2;
    };

    for (std::size_t count : {std::size_t{1}, std::size_t{7},
                              std::size_t{8}, std::size_t{9},
                              std::size_t{32}}) {
        SCOPED_TRACE("lanes " + std::to_string(count));
        std::vector<HierarchyStats> refs;
        for (std::size_t i = 0; i < count; ++i)
            refs.push_back(solo<TwoLevelHierarchy>(
                kWarmup, l1, l2For(i), TwoLevelPolicy::StrictInclusive));
        for (SimdBackend backend : runnableBackends()) {
            SCOPED_TRACE(simdBackendName(backend));
            BackendGuard guard(backend);
            SimGroup group;
            for (std::size_t i = 0; i < count; ++i)
                group.addTwoLevel(l1, l2For(i),
                                  TwoLevelPolicy::StrictInclusive);
            EXPECT_EQ(group.flatLaneCount(), count);
            BatchEngine::run(sharedTrace(), kWarmup, group);
            for (std::size_t i = 0; i < count; ++i) {
                SCOPED_TRACE("lane " + std::to_string(i));
                expectSameStats(group.stats(i), refs[i]);
            }
        }
    }
}

TEST(SimdBackendDifferential, WarmupEdgesMatchUnderEveryBackend)
{
    CacheParams l1;
    l1.sizeBytes = 2_KiB;
    CacheParams l2;
    l2.sizeBytes = 16_KiB;
    l2.assoc = 4;
    for (std::uint64_t warmup :
         {std::uint64_t(0), kRefs / 2, kRefs, kRefs + 5000}) {
        SCOPED_TRACE("warmup " + std::to_string(warmup));
        HierarchyStats single_ref =
            solo<SingleLevelHierarchy>(warmup, l1);
        HierarchyStats incl_ref = solo<TwoLevelHierarchy>(
            warmup, l1, l2, TwoLevelPolicy::Inclusive);
        HierarchyStats strict_ref = solo<TwoLevelHierarchy>(
            warmup, l1, l2, TwoLevelPolicy::StrictInclusive);
        for (SimdBackend backend : runnableBackends()) {
            SCOPED_TRACE(simdBackendName(backend));
            BackendGuard guard(backend);
            SimGroup group;
            group.addSingleLevel(l1);
            group.addTwoLevel(l1, l2, TwoLevelPolicy::Inclusive);
            group.addTwoLevel(l1, l2, TwoLevelPolicy::StrictInclusive);
            BatchEngine::run(sharedTrace(), warmup, group);
            expectSameStats(group.stats(0), single_ref);
            expectSameStats(group.stats(1), incl_ref);
            expectSameStats(group.stats(2), strict_ref);
        }
    }
}

TEST(SimdBackendDifferential, VectorBackendsMatchScalarByteForByte)
{
    // Scalar is the reference kernel; every vector backend must
    // reproduce its counters exactly on an identical group. (Solo
    // equivalence above implies this, but the direct comparison
    // localizes a failure to the pair of kernels that disagree.)
    std::vector<SimdBackend> backends = runnableBackends();
    ASSERT_EQ(backends.front(), SimdBackend::Scalar);

    CacheParams l1;
    l1.sizeBytes = 4_KiB;
    auto runAll = [&](SimdBackend backend) {
        BackendGuard guard(backend);
        SimGroup group;
        group.addSingleLevel(l1);
        for (std::uint64_t l2_size : {8_KiB, 32_KiB, 128_KiB}) {
            CacheParams l2;
            l2.sizeBytes = l2_size;
            l2.assoc = 4;
            group.addTwoLevel(l1, l2, TwoLevelPolicy::Inclusive);
            group.addTwoLevel(l1, l2, TwoLevelPolicy::StrictInclusive);
        }
        BatchEngine::run(sharedTrace(), kWarmup, group);
        std::vector<HierarchyStats> all;
        for (std::size_t i = 0; i < group.laneCount(); ++i)
            all.push_back(group.stats(i));
        return all;
    };

    std::vector<HierarchyStats> scalar = runAll(SimdBackend::Scalar);
    for (std::size_t b = 1; b < backends.size(); ++b) {
        SCOPED_TRACE(simdBackendName(backends[b]));
        std::vector<HierarchyStats> vec = runAll(backends[b]);
        ASSERT_EQ(vec.size(), scalar.size());
        for (std::size_t i = 0; i < scalar.size(); ++i) {
            SCOPED_TRACE("lane " + std::to_string(i));
            expectSameStats(vec[i], scalar[i]);
        }
    }
}

TEST(BatchEngine, SimulateConfigsReportsLaneSplit)
{
    std::vector<SystemConfig> configs(3);
    configs[0].l1Bytes = 4_KiB;
    configs[0].l2Bytes = 0;
    configs[1].l1Bytes = 4_KiB;
    configs[1].l2Bytes = 32_KiB;
    configs[2].l1Bytes = 4_KiB;
    configs[2].l2Bytes = 32_KiB;
    configs[2].assume.policy = TwoLevelPolicy::Exclusive;
    BatchEngine::Result r =
        BatchEngine::simulateConfigs(sharedTrace(), kWarmup, configs);
    ASSERT_EQ(r.stats.size(), 3u);
    EXPECT_EQ(r.flatLanes, 2u);
    EXPECT_EQ(r.genericLanes, 1u);
    for (const HierarchyStats &s : r.stats)
        EXPECT_EQ(s.totalRefs(), kRefs - kWarmup);
}

TEST(EvaluatorBatch, BatchMatchesPointwiseMissStats)
{
    SystemAssumptions a;
    std::vector<SystemConfig> configs = DesignSpace::enumerate(a);
    ASSERT_GT(configs.size(), 40u);

    MissRateEvaluator batched(kRefs);
    MissRateEvaluator pointwise(kRefs);
    auto results =
        batched.tryMissStatsBatch(Benchmark::Espresso, configs);
    ASSERT_EQ(results.size(), configs.size());
    for (std::size_t i = 0; i < configs.size(); ++i) {
        SCOPED_TRACE("config " + configs[i].label());
        ASSERT_TRUE(results[i].ok());
        HierarchyStats ref =
            pointwise.tryMissStats(Benchmark::Espresso, configs[i])
                .value();
        expectSameStats(results[i].value(), ref);
    }
}

TEST(EvaluatorBatch, InvalidConfigsFailSoftInTheirSlots)
{
    std::vector<SystemConfig> configs(3);
    configs[0].l1Bytes = 4_KiB;
    configs[1].l1Bytes = 3000; // not a power of two
    configs[2].l1Bytes = 8_KiB;
    MissRateEvaluator ev(kRefs);
    auto results = ev.tryMissStatsBatch(Benchmark::Li, configs);
    ASSERT_EQ(results.size(), 3u);
    EXPECT_TRUE(results[0].ok());
    ASSERT_FALSE(results[1].ok());
    EXPECT_EQ(results[1].status().code(), StatusCode::InvalidConfig);
    EXPECT_TRUE(results[2].ok());
}

TEST(EvaluatorBatch, DuplicatesAndMemoHitsShareOneSimulation)
{
    SystemConfig c;
    c.l1Bytes = 4_KiB;
    c.l2Bytes = 32_KiB;
    SystemConfig timing_twin = c; // same memo key, different timing
    timing_twin.assume.offchipNs = 200;
    SystemConfig other;
    other.l1Bytes = 8_KiB;

    MissRateEvaluator ev(kRefs);
    HierarchyStats first = ev.tryMissStats(Benchmark::Gcc1, c).value();
    EXPECT_EQ(ev.memoSize(), 1u);

    std::vector<SystemConfig> configs = {c, timing_twin, other, c};
    auto results = ev.tryMissStatsBatch(Benchmark::Gcc1, configs);
    ASSERT_EQ(results.size(), 4u);
    // Only `other` was new.
    EXPECT_EQ(ev.memoSize(), 2u);
    for (const auto &r : results)
        ASSERT_TRUE(r.ok());
    expectSameStats(results[0].value(), first);
    expectSameStats(results[1].value(), first);
    expectSameStats(results[3].value(), first);
}

TEST(EvaluatorBatch, MissingTraceFileFailsEverySlot)
{
    EvaluatorOptions opts;
    opts.traceRefs = kRefs;
    opts.traceFiles[Benchmark::Doduc] = "/nonexistent/doduc.trc";
    MissRateEvaluator ev(std::move(opts));
    std::vector<SystemConfig> configs(2);
    configs[0].l1Bytes = 4_KiB;
    configs[1].l1Bytes = 8_KiB;
    auto results = ev.tryMissStatsBatch(Benchmark::Doduc, configs);
    ASSERT_EQ(results.size(), 2u);
    for (const auto &r : results) {
        ASSERT_FALSE(r.ok());
        EXPECT_EQ(r.status().code(), StatusCode::IoError);
    }
}

TEST(EvaluatorBatch, AllLanesFailingLeavesBatchWellFormed)
{
    // Every slot invalid: the batch must fail soft per slot without
    // simulating anything, polluting the memo, or wedging the
    // evaluator for later, healthy batches.
    std::vector<SystemConfig> bad(3);
    bad[0].l1Bytes = 3000;  // not a power of two
    bad[1].l1Bytes = 4_KiB;
    bad[1].l2Bytes = 3000; // not a power of two
    bad[2].l1Bytes = 0;

    MissRateEvaluator ev(kRefs);
    auto results = ev.tryMissStatsBatch(Benchmark::Li, bad);
    ASSERT_EQ(results.size(), bad.size());
    for (const auto &r : results) {
        ASSERT_FALSE(r.ok());
        EXPECT_EQ(r.status().code(), StatusCode::InvalidConfig);
    }
    EXPECT_EQ(ev.memoSize(), 0u);

    SystemConfig good;
    good.l1Bytes = 4_KiB;
    auto after = ev.tryMissStatsBatch(Benchmark::Li, {&good, 1});
    ASSERT_EQ(after.size(), 1u);
    EXPECT_TRUE(after[0].ok());
}

TEST(SweepCacheBackend, BackendTagKeepsStoreKeysDistinct)
{
    SystemConfig c;
    c.l1Bytes = 4_KiB;
    c.l2Bytes = 32_KiB;
    std::string id = SweepCache::traceIdentity(Benchmark::Li, kRefs, "");
    std::string exactKey = SweepCache::keyText(id, kWarmup, c);
    std::string analyticKey =
        SweepCache::keyText(id, kWarmup, c, "analytic1");
    EXPECT_NE(exactKey, analyticKey);
    // Exact keys keep the legacy spelling; only tagged keys grow.
    EXPECT_EQ(analyticKey.find(exactKey), 0u);

    SweepCache cache;
    std::string path = testing::TempDir() + "/backend_tag.store";
    std::remove(path.c_str());
    ASSERT_TRUE(cache.open(path).ok());
    HierarchyStats stats;
    stats.instrRefs = 42;
    cache.store(exactKey, stats);
    // A store warmed by the exact backend must read as cold to the
    // analytic key, and vice versa.
    EXPECT_TRUE(cache.lookup(exactKey).has_value());
    EXPECT_FALSE(cache.lookup(analyticKey).has_value());
    cache.store(analyticKey, stats);
    EXPECT_EQ(cache.entries(), 2u);
    cache.close();
    std::remove(path.c_str());
}

TEST(SweepCacheBackend, AnalyticBackendMissesExactWarmedStore)
{
    std::string path = testing::TempDir() + "/backend_mismatch.store";
    std::remove(path.c_str());

    SystemConfig c;
    c.l1Bytes = 4_KiB;
    c.l2Bytes = 32_KiB;

    auto makeEvaluator = [&](MissBackend backend) {
        auto store = std::make_shared<SweepCache>();
        EXPECT_TRUE(store->open(path).ok());
        EvaluatorOptions opts;
        opts.traceRefs = kRefs;
        opts.resultStore = store;
        opts.backend = backend;
        return std::make_pair(
            std::make_unique<MissRateEvaluator>(std::move(opts)),
            store);
    };

    // Warm the store with the exact result.
    auto [exact, exactStore] = makeEvaluator(MissBackend::Exact);
    ASSERT_TRUE(exact->tryMissStats(Benchmark::Li, c).ok());
    EXPECT_EQ(exactStore->entries(), 1u);
    exactStore->close();

    // A fresh analytic evaluator over the SAME store must not be
    // served the exact entry: its stale-key read misses and it
    // appends its own, tagged entry.
    auto [analytic, analyticStore] =
        makeEvaluator(MissBackend::Analytic);
    auto first = analytic->tryMissStats(Benchmark::Li, c);
    ASSERT_TRUE(first.ok());
    EXPECT_EQ(analyticStore->entries(), 2u);
    analyticStore->close();

    // A second analytic evaluator IS served the tagged entry: no
    // third append, byte-identical stats.
    auto [warm, warmStore] = makeEvaluator(MissBackend::Analytic);
    auto served = warm->tryMissStats(Benchmark::Li, c);
    ASSERT_TRUE(served.ok());
    EXPECT_EQ(warmStore->entries(), 2u);
    expectSameStats(served.value(), first.value());
    warmStore->close();

    std::remove(path.c_str());
}

TEST(SweepRequestApi, MatchesPerBenchmarkEvaluateAll)
{
    SystemAssumptions a;
    SweepRequest req;
    req.configs = DesignSpace::enumerate(a, true, false);
    req.benchmarks = {Benchmark::Espresso, Benchmark::Li};

    MissRateEvaluator ev_req(kRefs);
    Explorer ex_req(ev_req);
    auto sweeps = ex_req.evaluateAll(req);
    ASSERT_EQ(sweeps.size(), 2u);

    MissRateEvaluator ev_ref(kRefs);
    Explorer ex_ref(ev_ref);
    for (std::size_t s = 0; s < sweeps.size(); ++s) {
        EXPECT_EQ(sweeps[s].benchmark, req.benchmarks[s]);
        auto ref =
            ex_ref.evaluateAll(req.benchmarks[s], req.configs, nullptr);
        ASSERT_EQ(sweeps[s].points.size(), ref.size());
        for (std::size_t i = 0; i < ref.size(); ++i) {
            SCOPED_TRACE(ref[i].config.label());
            expectSameStats(sweeps[s].points[i].miss, ref[i].miss);
            EXPECT_EQ(sweeps[s].points[i].tpi.tpi, ref[i].tpi.tpi);
            EXPECT_EQ(sweeps[s].points[i].areaRbe, ref[i].areaRbe);
        }
    }
}

TEST(SweepRequestApi, ThreadOverrideIsScopedToTheCall)
{
    setParallelWorkerCount(3);
    SweepRequest req;
    SystemConfig c;
    c.l1Bytes = 4_KiB;
    req.configs = {c};
    req.benchmarks = {Benchmark::Li};
    req.threads = 2;
    MissRateEvaluator ev(2000);
    Explorer ex(ev);
    auto sweeps = ex.evaluateAll(req);
    ASSERT_EQ(sweeps.size(), 1u);
    EXPECT_EQ(sweeps[0].points.size(), 1u);
    // The request's override must not leak past the call.
    EXPECT_EQ(parallelWorkerOverride(), 3u);
    setParallelWorkerCount(0);
}

TEST(SweepRequestApi, ReportCollectsFailuresAcrossBenchmarks)
{
    SweepRequest req;
    SystemConfig good;
    good.l1Bytes = 4_KiB;
    SystemConfig bad;
    bad.l1Bytes = 3000;
    req.configs = {good, bad};
    req.benchmarks = {Benchmark::Li, Benchmark::Espresso};
    FailureReport report;
    req.report = &report;
    MissRateEvaluator ev(2000);
    Explorer ex(ev);
    auto sweeps = ex.evaluateAll(req);
    ASSERT_EQ(sweeps.size(), 2u);
    EXPECT_EQ(sweeps[0].points.size(), 1u);
    EXPECT_EQ(sweeps[1].points.size(), 1u);
    EXPECT_EQ(report.size(), 2u); // the bad config, once per bench
}

TEST(FailureReportApi, FailuresReturnsStableSnapshot)
{
    FailureReport report;
    report.add("first", statusf(StatusCode::InternalError, "one"));
    std::vector<SweepFailure> snap = report.failures();
    ASSERT_EQ(snap.size(), 1u);
    report.add("second", statusf(StatusCode::InternalError, "two"));
    // The snapshot is a value copy: later writers cannot grow or
    // invalidate it.
    EXPECT_EQ(snap.size(), 1u);
    EXPECT_EQ(snap[0].subject, "first");
    EXPECT_EQ(report.failures().size(), 2u);
}
