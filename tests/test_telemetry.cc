/**
 * @file
 * Cross-process telemetry (core/shard_runner.hh frame tags 3-6 +
 * util/flight_recorder.hh).
 *
 * The contract under test:
 *
 *  - a clean supervised sweep's aggregated metric rollups (cache.*,
 *    explore.*) equal the in-process engine's counters exactly —
 *    worker deltas stream back losslessly and merge once;
 *  - every worker attempt also lands under its own worker.<id>.*
 *    namespace;
 *  - worker profiler phase stats merge into the parent profiler;
 *  - on an injected crash or hang, the FailureReport quarantine
 *    entry carries the flight recorder's last-known state: the
 *    poisoned design point's label and the phase it died in;
 *  - the merged multi-process trace export parses as strict JSON
 *    and names one process track per worker attempt;
 *  - the flight-recorder payload codec round-trips, and the note
 *    ring keeps the newest entries when it wraps;
 *  - supervisorTimelinesJson renders strict JSON with one entry per
 *    resolved (sub-)shard.
 */

#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "core/explorer.hh"
#include "core/shard_runner.hh"
#include "util/flight_recorder.hh"
#include "util/json.hh"
#include "util/metrics.hh"
#include "util/parallel.hh"
#include "util/profiler.hh"
#include "util/trace_event.hh"
#include "util/units.hh"

using namespace tlc;

namespace {

constexpr std::uint64_t kRefs = 50000;

/** The 64-point reference grid of bench/batch_sweep_timing.cc. */
std::vector<SystemConfig>
makeGrid()
{
    std::vector<SystemConfig> configs;
    for (std::uint64_t l1 = 1_KiB; l1 <= 128_KiB; l1 *= 2) {
        SystemConfig c;
        c.l1Bytes = l1;
        c.l2Bytes = 0;
        configs.push_back(c);
        for (std::uint64_t ratio = 2; ratio <= 128; ratio *= 2) {
            c.l2Bytes = l1 * ratio;
            configs.push_back(c);
        }
    }
    return configs;
}

SupervisorOptions
testOptions()
{
    SupervisorOptions o;
    o.pointsPerShard = 32;
    o.watchdog.timeoutSeconds = 20.0;
    o.watchdog.killGraceSeconds = 0.2;
    o.retry.maxRetries = 1;
    o.retry.backoffBaseSeconds = 0.001;
    o.retry.backoffMaxSeconds = 0.01;
    o.evaluator.traceRefs = kRefs;
    return o;
}

/** Counters under the compared namespaces: the simulation- and
 *  sweep-level counts that must be identical however the sweep
 *  executed. trace.* is excluded by construction (each worker
 *  subprocess loads the trace again), worker.* because only the
 *  supervised run has per-worker namespaces, supervisor.* because
 *  the in-process engine never supervises. */
std::map<std::string, std::uint64_t>
comparableCounters()
{
    std::map<std::string, std::uint64_t> out;
    for (const auto &[name, value] :
         MetricsRegistry::global().counterValues()) {
        if (name.rfind("cache.", 0) == 0 ||
            name.rfind("explore.", 0) == 0)
            out[name] = value;
    }
    return out;
}

struct RunOutput
{
    std::vector<DesignPoint> points;
    std::vector<SweepFailure> failures;
    SupervisionStats stats;
    std::vector<ShardTimeline> timeline;
};

RunOutput
runInProcess(const std::vector<SystemConfig> &configs)
{
    EvaluatorOptions opts;
    opts.traceRefs = kRefs;
    MissRateEvaluator ev(std::move(opts));
    Explorer ex(ev);
    FailureReport report;
    RunOutput r;
    r.points = ex.evaluateAll(Benchmark::Gcc1, configs, &report);
    r.failures = report.failures();
    return r;
}

RunOutput
runSupervised(const std::vector<SystemConfig> &configs,
              const SupervisorOptions &opts)
{
    EvaluatorOptions evopts;
    evopts.traceRefs = kRefs;
    MissRateEvaluator ev(std::move(evopts));
    Explorer ex(ev);
    FailureReport report;
    RunOutput r;
    SupervisedSweep ss = supervisedEvaluateAll(ex, Benchmark::Gcc1,
                                               configs, &report, opts);
    r.points = std::move(ss.points);
    r.stats = ss.stats;
    r.timeline = std::move(ss.timeline);
    r.failures = report.failures();
    return r;
}

ShardFault
fault(ShardFault::Kind kind, std::uint32_t at, int times)
{
    ShardFault f;
    f.kind = kind;
    f.atIndex = at;
    f.times = times;
    return f;
}

} // namespace

// ---------------------------------------------------------------
// Metrics rollup parity
// ---------------------------------------------------------------

TEST(Telemetry, SupervisedRollupsEqualInProcessCounters)
{
    const auto grid = makeGrid();

    // One worker thread on both sides so the in-process engine
    // splits the grid into the same 32-point batches the supervised
    // shards use — identical simulation work, identical counts.
    setParallelWorkerCount(1);
    MetricsRegistry::global().resetAll();
    RunOutput inproc = runInProcess(grid);
    const auto reference = comparableCounters();

    MetricsRegistry::global().resetAll();
    RunOutput sup = runSupervised(grid, testOptions());
    const auto rollup = comparableCounters();
    setParallelWorkerCount(0);

    ASSERT_EQ(inproc.points.size(), sup.points.size());
    EXPECT_TRUE(sup.failures.empty());
    EXPECT_FALSE(reference.empty());
    EXPECT_EQ(reference, rollup);
}

TEST(Telemetry, WorkerNamespacesAndPhaseStatsMerge)
{
    const auto grid = makeGrid();
    MetricsRegistry::global().resetAll();
    Profiler::global().reset();
    const bool wasEnabled = Profiler::global().enabled();
    Profiler::global().setEnabled(true);

    RunOutput sup = runSupervised(grid, testOptions());
    Profiler::global().setEnabled(wasEnabled);

    // 64 points / 32 per shard = 2 clean worker attempts, each
    // streaming one metrics, one phases and one flight frame.
    EXPECT_EQ(sup.stats.attempts, 2u);
    EXPECT_EQ(sup.stats.metricFrames, 2u);
    EXPECT_EQ(sup.stats.phaseFrames, 2u);
    EXPECT_EQ(sup.stats.flightFrames, 2u);

    // Every attempt put its simulation counts under worker.<id>.*.
    std::uint64_t namespaced = 0;
    bool sawWorkerCacheHits = false;
    for (const auto &[name, value] :
         MetricsRegistry::global().counterValues()) {
        if (name.rfind("worker.", 0) == 0) {
            ++namespaced;
            if (name.find(".cache.l1.hits") != std::string::npos &&
                value > 0)
                sawWorkerCacheHits = true;
        }
    }
    EXPECT_GT(namespaced, 0u);
    EXPECT_TRUE(sawWorkerCacheHits);

    // The workers' sim.batch time merged into the parent profiler.
    const auto phases = Profiler::global().snapshot();
    auto it = phases.find(phase::kSimBatch);
    ASSERT_NE(it, phases.end());
    EXPECT_GE(it->second.calls, 2u);
    EXPECT_GT(it->second.totalNs, 0u);
    // And the parent's own supervision phase is still there.
    EXPECT_NE(phases.find(phase::kSupervisorShard), phases.end());
}

// ---------------------------------------------------------------
// Flight-recorder context in the failure report
// ---------------------------------------------------------------

TEST(Telemetry, CrashQuarantineCarriesFlightContext)
{
    const auto grid = makeGrid();
    SupervisorOptions opts = testOptions();
    opts.pointsPerShard = 4;
    opts.retry.maxRetries = 0;
    opts.faults.faults.push_back(
        fault(ShardFault::Kind::Crash, 12, -1));

    RunOutput r = runSupervised(grid, opts);
    ASSERT_EQ(r.failures.size(), 1u);
    const SweepFailure &f = r.failures.front();
    EXPECT_EQ(f.subject, grid[12].label());
    EXPECT_EQ(f.status.code(), StatusCode::WorkerCrash);
    EXPECT_NE(f.status.message().find("quarantined"),
              std::string::npos);
    // The emergency signal path flushed the ring: the entry names
    // the exact design point and the phase the worker died in.
    EXPECT_NE(f.status.message().find("flight recorder"),
              std::string::npos);
    EXPECT_NE(f.status.message().find(grid[12].label()),
              std::string::npos);
    EXPECT_NE(f.status.message().find("report"), std::string::npos);

    // The timeline saw the flight frame too.
    bool sawSignalFlight = false;
    for (const auto &tl : r.timeline)
        for (const auto &at : tl.attempts)
            if (at.flightReason == "signal" &&
                at.flightPoint == grid[12].label())
                sawSignalFlight = true;
    EXPECT_TRUE(sawSignalFlight);
}

TEST(Telemetry, HangQuarantineCarriesFlightContext)
{
    const auto grid = makeGrid();
    SupervisorOptions opts = testOptions();
    opts.pointsPerShard = 4;
    opts.retry.maxRetries = 0;
    opts.watchdog.timeoutSeconds = 2.0;
    opts.faults.faults.push_back(fault(ShardFault::Kind::Hang, 12, -1));

    RunOutput r = runSupervised(grid, opts);
    ASSERT_EQ(r.failures.size(), 1u);
    const SweepFailure &f = r.failures.front();
    EXPECT_EQ(f.subject, grid[12].label());
    EXPECT_EQ(f.status.code(), StatusCode::WorkerTimeout);
    EXPECT_NE(f.status.message().find("quarantined"),
              std::string::npos);
    EXPECT_NE(f.status.message().find("flight recorder"),
              std::string::npos);
    EXPECT_NE(f.status.message().find(grid[12].label()),
              std::string::npos);
}

// ---------------------------------------------------------------
// Merged trace export
// ---------------------------------------------------------------

TEST(Telemetry, MergedTraceParsesStrictlyWithWorkerTracks)
{
    const auto grid = makeGrid();
    TraceEventRecorder rec;
    TraceEventRecorder::setActive(&rec);
    RunOutput sup = runSupervised(grid, testOptions());
    TraceEventRecorder::setActive(nullptr);

    EXPECT_EQ(sup.stats.eventFrames, 2u);

    std::ostringstream os;
    rec.write(os);
    const std::string doc = os.str();
    EXPECT_TRUE(jsonSyntaxOk(doc));
    // One named process track per worker attempt, plus the
    // supervisor's own shard slices.
    // The worker serial is process-global (it keeps counting across
    // tests in this binary), so match the stable part of the track
    // name rather than a specific id.
    EXPECT_NE(doc.find("process_name"), std::string::npos);
    EXPECT_NE(doc.find(": shard [0..32) attempt 1"), std::string::npos)
        << "expected a per-attempt process track name";
    EXPECT_NE(doc.find("\"supervisor\""), std::string::npos);
    EXPECT_NE(doc.find("sim.batch"), std::string::npos);
}

// ---------------------------------------------------------------
// Flight-recorder codec
// ---------------------------------------------------------------

TEST(Telemetry, FlightPayloadRoundTrips)
{
    FlightRecorder &fr = FlightRecorder::global();
    fr.reset();
    fr.setPoint("8:64");
    fr.setPhase("sim.batch");
    fr.note("first %d", 1);
    fr.note("second %d", 2);

    char buf[4096];
    const std::size_t n =
        fr.serializePayload(buf, sizeof buf, 6,
                            FlightRecorder::kReasonSignal, 11);
    ASSERT_GT(n, 0u);

    FlightInfo info;
    ASSERT_TRUE(FlightRecorder::decodePayload(
        std::string_view(buf, n), 6, info));
    EXPECT_EQ(info.reason, FlightRecorder::kReasonSignal);
    EXPECT_EQ(info.signo, 11);
    EXPECT_EQ(info.point, "8:64");
    EXPECT_EQ(info.phase, "sim.batch");
    ASSERT_EQ(info.notes.size(), 2u);
    EXPECT_EQ(info.notes[0], "first 1");
    EXPECT_EQ(info.notes[1], "second 2");

    // Wrong tag and truncated payloads are rejected.
    EXPECT_FALSE(FlightRecorder::decodePayload(
        std::string_view(buf, n), 5, info));
    EXPECT_FALSE(FlightRecorder::decodePayload(
        std::string_view(buf, n - 1), 6, info));
    fr.reset();
}

TEST(Telemetry, FlightRingKeepsNewestWhenWrapping)
{
    FlightRecorder &fr = FlightRecorder::global();
    fr.reset();
    const int total = static_cast<int>(FlightRecorder::kRingEntries) + 5;
    for (int i = 0; i < total; ++i)
        fr.note("note %d", i);

    char buf[4096];
    const std::size_t n = fr.serializePayload(
        buf, sizeof buf, 6, FlightRecorder::kReasonClean, 0);
    ASSERT_GT(n, 0u);
    FlightInfo info;
    ASSERT_TRUE(FlightRecorder::decodePayload(
        std::string_view(buf, n), 6, info));
    ASSERT_EQ(info.notes.size(), FlightRecorder::kRingEntries);
    // Oldest surviving note first, newest last.
    EXPECT_EQ(info.notes.front(), "note 5");
    EXPECT_EQ(info.notes.back(),
              "note " + std::to_string(total - 1));
    fr.reset();
}

// ---------------------------------------------------------------
// Timelines
// ---------------------------------------------------------------

TEST(Telemetry, TimelineRecordsAttemptsAndRendersStrictJson)
{
    const auto grid = makeGrid();
    SupervisorOptions opts = testOptions();
    opts.pointsPerShard = 16;
    // A transient crash: first attempt dies at point 12, the retry
    // succeeds, so one shard shows two attempts.
    opts.faults.faults.push_back(fault(ShardFault::Kind::Crash, 12, 1));

    RunOutput r = runSupervised(grid, opts);
    EXPECT_TRUE(r.failures.empty());
    ASSERT_EQ(r.timeline.size(), 4u); // 64 points / 16 per shard
    bool sawRetry = false;
    for (const auto &tl : r.timeline) {
        EXPECT_EQ(tl.resolution, "ok");
        ASSERT_FALSE(tl.attempts.empty());
        if (tl.attempts.size() == 2) {
            sawRetry = true;
            EXPECT_EQ(tl.firstIndex, 0u);
            EXPECT_EQ(tl.attempts[0].outcome, "crash");
            EXPECT_GT(tl.attempts[0].backoffSeconds, 0.0);
            EXPECT_EQ(tl.attempts[1].outcome, "ok");
            // The crashed attempt still delivered everything before
            // the poisoned point.
            EXPECT_EQ(tl.attempts[0].resultsDelivered, 12u);
            EXPECT_EQ(tl.attempts[1].resultsDelivered, 4u);
        }
    }
    EXPECT_TRUE(sawRetry);

    const std::string json =
        supervisorTimelinesJson(r.stats, r.timeline);
    EXPECT_TRUE(jsonSyntaxOk(json));
    EXPECT_NE(json.find("\"shards\""), std::string::npos);
    EXPECT_NE(json.find("\"resolution\": \"ok\""), std::string::npos);
}
