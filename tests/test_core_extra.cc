/**
 * @file
 * Additional core tests: replacement-policy keys, line-size keys,
 * default trace length, and explorer timing-cache behaviour.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "core/explorer.hh"
#include "util/units.hh"

using namespace tlc;

TEST(EvaluatorExtra, KeyDistinguishesL2Replacement)
{
    MissRateEvaluator ev(50000);
    SystemConfig a;
    a.l1Bytes = 2_KiB;
    a.l2Bytes = 16_KiB;
    a.assume.l2Repl = ReplPolicy::Random;
    SystemConfig b = a;
    b.assume.l2Repl = ReplPolicy::LRU;
    (void)ev.tryMissStats(Benchmark::Gcc1, a).value();
    (void)ev.tryMissStats(Benchmark::Gcc1, b).value();
    EXPECT_EQ(ev.memoSize(), 2u); // distinct memo entries
}

TEST(EvaluatorExtra, KeyDistinguishesLineSize)
{
    MissRateEvaluator ev(50000);
    SystemConfig a;
    a.l1Bytes = 4_KiB;
    a.l2Bytes = 0;
    SystemConfig b = a;
    b.assume.lineBytes = 32;
    HierarchyStats sa = ev.tryMissStats(Benchmark::Li, a).value();
    HierarchyStats sb = ev.tryMissStats(Benchmark::Li, b).value();
    EXPECT_EQ(ev.memoSize(), 2u); // distinct memo entries
    // Longer lines exploit spatial locality: fewer misses here.
    EXPECT_LT(sb.l1MissRate(), sa.l1MissRate());
}

TEST(EvaluatorExtra, LruL2BeatsOrMatchesRandom)
{
    MissRateEvaluator ev(100000);
    SystemConfig rnd;
    rnd.l1Bytes = 2_KiB;
    rnd.l2Bytes = 16_KiB;
    rnd.assume.l2Repl = ReplPolicy::Random;
    SystemConfig lru = rnd;
    lru.assume.l2Repl = ReplPolicy::LRU;
    for (Benchmark b : {Benchmark::Gcc1, Benchmark::Doduc}) {
        EXPECT_LE(ev.tryMissStats(b, lru).value().l2Misses,
                  ev.tryMissStats(b, rnd).value().l2Misses * 1.02)
            << Workloads::info(b).name;
    }
}

TEST(WorkloadsExtra, DefaultTraceLengthRespectsScaleEnv)
{
    ::setenv("TLC_TRACE_SCALE", "0.5", 1);
    EXPECT_EQ(Workloads::defaultTraceLength(), 2000000u);
    ::setenv("TLC_TRACE_SCALE", "2", 1);
    EXPECT_EQ(Workloads::defaultTraceLength(), 8000000u);
    ::setenv("TLC_TRACE_SCALE", "garbage", 1);
    EXPECT_EQ(Workloads::defaultTraceLength(), 4000000u);
    ::unsetenv("TLC_TRACE_SCALE");
    EXPECT_EQ(Workloads::defaultTraceLength(), 4000000u);
}

TEST(ExplorerExtra, TimingCacheReturnsSameObject)
{
    MissRateEvaluator ev(50000);
    Explorer ex(ev);
    const TimingResult &a = ex.timingOf(32_KiB, 1, 16);
    const TimingResult &b = ex.timingOf(32_KiB, 1, 16);
    EXPECT_EQ(&a, &b);
    const TimingResult &c = ex.timingOf(32_KiB, 4, 16);
    EXPECT_NE(&a, &c);
}

TEST(ExplorerExtra, TimingKeyCannotAliasDistinctGeometries)
{
    // Regression for the old packed key (size*1024 + assoc*256 +
    // line): assoc*256 + line overflows the 10 bits below the size
    // for assoc >= 4, so e.g. (2048, 8, 16) and (2050, 0, 16) both
    // packed to 2099216. The full-tuple key keeps every distinct
    // triple distinct.
    EXPECT_EQ(2048ull * 1024 + 8 * 256 + 16,
              2050ull * 1024 + 0 * 256 + 16);
    EXPECT_NE(Explorer::timingKey(2048, 8, 16),
              Explorer::timingKey(2050, 0, 16));

    // Each coordinate participates in the key on its own.
    EXPECT_NE(Explorer::timingKey(8_KiB, 1, 16),
              Explorer::timingKey(16_KiB, 1, 16));
    EXPECT_NE(Explorer::timingKey(8_KiB, 1, 16),
              Explorer::timingKey(8_KiB, 2, 16));
    EXPECT_NE(Explorer::timingKey(8_KiB, 1, 16),
              Explorer::timingKey(8_KiB, 1, 32));
}

TEST(ExplorerExtra, TimingCacheMemoizesPerDistinctGeometry)
{
    MissRateEvaluator ev(50000);
    Explorer ex(ev);
    EXPECT_EQ(ex.timingCacheSize(), 0u);
    ex.timingOf(8_KiB, 1, 16);
    ex.timingOf(8_KiB, 1, 16); // memoized, not re-priced
    EXPECT_EQ(ex.timingCacheSize(), 1u);
    ex.timingOf(8_KiB, 2, 16);
    ex.timingOf(8_KiB, 1, 32);
    ex.timingOf(16_KiB, 1, 16);
    EXPECT_EQ(ex.timingCacheSize(), 4u);
}

TEST(ExplorerExtra, TwoHundredNsRaisesTpiOnly)
{
    MissRateEvaluator ev(100000);
    Explorer ex(ev);
    SystemConfig c;
    c.l1Bytes = 4_KiB;
    c.l2Bytes = 32_KiB;
    DesignPoint p50 = ex.evaluate(Benchmark::Espresso, c);
    c.assume.offchipNs = 200;
    DesignPoint p200 = ex.evaluate(Benchmark::Espresso, c);
    EXPECT_GT(p200.tpi.tpi, p50.tpi.tpi);
    EXPECT_DOUBLE_EQ(p200.areaRbe, p50.areaRbe);
    EXPECT_EQ(p200.miss.l2Misses, p50.miss.l2Misses);
}

TEST(ExplorerExtra, ExclusiveSweepNeverWorseOnAverage)
{
    MissRateEvaluator ev(200000);
    Explorer ex(ev);
    SystemAssumptions inc;
    inc.l2Assoc = 4;
    inc.policy = TwoLevelPolicy::Inclusive;
    SystemAssumptions exc = inc;
    exc.policy = TwoLevelPolicy::Exclusive;
    for (Benchmark b : {Benchmark::Espresso, Benchmark::Doduc}) {
        Envelope ei = Explorer::envelopeOf(ex.sweep(b, inc));
        Envelope ee = Explorer::envelopeOf(ex.sweep(b, exc));
        EXPECT_LE(ee.meanGapAgainst(ei), 5e-3)
            << Workloads::info(b).name;
    }
}

TEST(ExplorerExtra, SetAssociativeL1Supported)
{
    MissRateEvaluator ev(100000);
    Explorer ex(ev);
    SystemConfig dm;
    dm.l1Bytes = 8_KiB;
    dm.l2Bytes = 0;
    SystemConfig sa = dm;
    sa.assume.l1Assoc = 4;
    DesignPoint pd = ex.evaluate(Benchmark::Gcc1, dm);
    DesignPoint ps = ex.evaluate(Benchmark::Gcc1, sa);
    // Associativity reduces misses but stretches the cycle (Hill).
    EXPECT_LT(ps.miss.l1MissRate(), pd.miss.l1MissRate());
    EXPECT_GT(ps.l1Timing.cycleNs, pd.l1Timing.cycleNs);
    EXPECT_NE(ps.config.assume.toString().find("4-way L1"),
              std::string::npos);
}

TEST(ExplorerExtra, KeyDistinguishesL1Assoc)
{
    MissRateEvaluator ev(50000);
    SystemConfig a;
    a.l1Bytes = 4_KiB;
    a.l2Bytes = 0;
    SystemConfig b = a;
    b.assume.l1Assoc = 2;
    (void)ev.tryMissStats(Benchmark::Li, a).value();
    (void)ev.tryMissStats(Benchmark::Li, b).value();
    EXPECT_EQ(ev.memoSize(), 2u); // distinct memo entries
}
