/**
 * @file
 * Tests for the TLB model and the §1 parallel-translation rule.
 */

#include <gtest/gtest.h>

#include "trace/workload.hh"
#include "vm/tlb.hh"

using namespace tlc;

TEST(Tlb, HitsWithinPage)
{
    Tlb tlb(TlbParams{4, 0, 4096, ReplPolicy::LRU});
    EXPECT_FALSE(tlb.access(0x1000));
    EXPECT_TRUE(tlb.access(0x1ffc)); // same page
    EXPECT_FALSE(tlb.access(0x2000)); // next page
    EXPECT_EQ(tlb.misses(), 2u);
    EXPECT_EQ(tlb.accesses(), 3u);
}

TEST(Tlb, CapacityEviction)
{
    Tlb tlb(TlbParams{2, 0, 4096, ReplPolicy::LRU});
    tlb.access(0x0000);
    tlb.access(0x1000);
    tlb.access(0x2000); // evicts page 0 (LRU)
    EXPECT_FALSE(tlb.access(0x0000));
}

TEST(Tlb, ReachComputation)
{
    TlbParams p{64, 0, 8192, ReplPolicy::LRU};
    EXPECT_EQ(p.reachBytes(), 64u * 8192u);
}

TEST(Tlb, ResetStatsKeepsContents)
{
    Tlb tlb(TlbParams{4, 0, 4096, ReplPolicy::LRU});
    tlb.access(0x1000);
    tlb.resetStats();
    EXPECT_EQ(tlb.accesses(), 0u);
    EXPECT_TRUE(tlb.access(0x1000)); // still mapped
}

TEST(Tlb, ParallelLookupRule)
{
    // §1: primary caches <= page size translate in parallel.
    EXPECT_TRUE(Tlb::parallelLookupPossible(4096, 4096));
    EXPECT_TRUE(Tlb::parallelLookupPossible(2048, 4096));
    EXPECT_FALSE(Tlb::parallelLookupPossible(8192, 4096));
    EXPECT_TRUE(Tlb::parallelLookupPossible(8192, 8192));
}

TEST(Tlb, RunOverWorkloadGivesLowMissRate)
{
    // The workloads' working sets are far smaller than the reach of
    // a 64-entry x 4 KB TLB for code, and data pages are reused.
    TraceBuffer t = Workloads::generate(Benchmark::Espresso, 100000);
    TlbRunStats s = runTlb(TlbParams{64, 0, 4096, ReplPolicy::LRU}, t,
                           10000);
    EXPECT_LT(s.missRate(), 0.01);
    EXPECT_EQ(s.refs, 90000u);
}

TEST(Tlb, SmallerTlbMissesMore)
{
    TraceBuffer t = Workloads::generate(Benchmark::Gcc1, 100000);
    double m8 =
        runTlb(TlbParams{8, 0, 4096, ReplPolicy::LRU}, t).missRate();
    double m128 =
        runTlb(TlbParams{128, 0, 4096, ReplPolicy::LRU}, t).missRate();
    EXPECT_GE(m8, m128);
}

TEST(Tlb, LargerPagesMissLess)
{
    TraceBuffer t = Workloads::generate(Benchmark::Tomcatv, 100000);
    double p4k =
        runTlb(TlbParams{32, 0, 4096, ReplPolicy::LRU}, t).missRate();
    double p8k =
        runTlb(TlbParams{32, 0, 8192, ReplPolicy::LRU}, t).missRate();
    EXPECT_GE(p4k + 1e-12, p8k);
}

TEST(Tlb, SetAssociativeTlbWorks)
{
    Tlb tlb(TlbParams{64, 4, 4096, ReplPolicy::LRU});
    for (std::uint64_t page = 0; page < 64; ++page)
        tlb.access(page * 4096);
    tlb.resetStats();
    for (std::uint64_t page = 0; page < 64; ++page)
        tlb.access(page * 4096);
    EXPECT_EQ(tlb.misses(), 0u);
}
