/**
 * @file
 * Unit tests for the statistics package.
 */

#include <gtest/gtest.h>

#include "util/stats.hh"

using namespace tlc;

TEST(Counter, StartsAtZeroAndCounts)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    ++c;
    ++c;
    c += 5;
    EXPECT_EQ(c.value(), 7u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(RunningStat, EmptyIsZero)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.variance(), 0.0);
    EXPECT_EQ(s.min(), 0.0);
    EXPECT_EQ(s.max(), 0.0);
}

TEST(RunningStat, KnownMoments)
{
    RunningStat s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.sample(x);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12); // sample variance
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.total(), 40.0);
}

TEST(RunningStat, SingleSample)
{
    RunningStat s;
    s.sample(3.5);
    EXPECT_DOUBLE_EQ(s.mean(), 3.5);
    EXPECT_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), 3.5);
    EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(RunningStat, ResetClears)
{
    RunningStat s;
    s.sample(1.0);
    s.sample(2.0);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
}

TEST(Log2Histogram, BucketsCorrectly)
{
    Log2Histogram h(8);
    h.sample(0); // bucket 0
    h.sample(1); // bucket 0
    h.sample(2); // bucket 1
    h.sample(3); // bucket 1
    h.sample(4); // bucket 2
    h.sample(7); // bucket 2
    h.sample(8); // bucket 3
    EXPECT_EQ(h.bucket(0), 2u);
    EXPECT_EQ(h.bucket(1), 2u);
    EXPECT_EQ(h.bucket(2), 2u);
    EXPECT_EQ(h.bucket(3), 1u);
    EXPECT_EQ(h.count(), 7u);
}

TEST(Log2Histogram, OverflowGoesToLastBucket)
{
    Log2Histogram h(4);
    h.sample(1u << 20);
    EXPECT_EQ(h.bucket(3), 1u);
}

TEST(Log2Histogram, FractionBelow)
{
    Log2Histogram h(16);
    for (int i = 0; i < 100; ++i)
        h.sample(1); // bucket 0: [1, 2)
    for (int i = 0; i < 100; ++i)
        h.sample(1000); // bucket 9
    EXPECT_NEAR(h.fractionBelow(2), 0.5, 0.01);
    EXPECT_NEAR(h.fractionBelow(2048), 1.0, 0.01);
    EXPECT_NEAR(h.fractionBelow(512), 0.5, 0.01);
}

TEST(Log2Histogram, QuantileOrdering)
{
    Log2Histogram h(20);
    for (std::uint64_t i = 1; i <= 10000; ++i)
        h.sample(i);
    EXPECT_LE(h.quantile(0.1), h.quantile(0.5));
    EXPECT_LE(h.quantile(0.5), h.quantile(0.9));
}

TEST(SafeRatio, HandlesZeroDenominator)
{
    EXPECT_EQ(safeRatio(5.0, 0.0), 0.0);
    EXPECT_DOUBLE_EQ(safeRatio(5.0, 2.0), 2.5);
}
