/**
 * @file
 * Tests for the single- and two-level hierarchies: counting,
 * warmup handling, inclusive-baseline behaviour, and the victim
 * cache. (Exclusive-policy semantics get their own file.)
 */

#include <gtest/gtest.h>

#include "cache/single_level.hh"
#include "cache/two_level.hh"
#include "cache/victim_cache.hh"
#include "trace/buffer.hh"
#include "util/random.hh"

using namespace tlc;

namespace {

CacheParams
l1p(std::uint64_t size)
{
    CacheParams p;
    p.sizeBytes = size;
    p.lineBytes = 16;
    p.assoc = 1;
    return p;
}

CacheParams
l2p(std::uint64_t size, std::uint32_t assoc)
{
    CacheParams p;
    p.sizeBytes = size;
    p.lineBytes = 16;
    p.assoc = assoc;
    p.repl = ReplPolicy::Random;
    return p;
}

TraceRecord
iref(std::uint32_t a)
{
    return {a, RefType::Instr};
}

TraceRecord
dref(std::uint32_t a)
{
    return {a, RefType::Load};
}

} // namespace

TEST(SingleLevel, CountsRefsByType)
{
    SingleLevelHierarchy h(l1p(1024));
    h.access(iref(0x1000));
    h.access(dref(0x2000));
    h.access({0x3000, RefType::Store});
    EXPECT_EQ(h.stats().instrRefs, 1u);
    EXPECT_EQ(h.stats().dataRefs, 2u);
}

TEST(SingleLevel, ColdMissesThenHits)
{
    SingleLevelHierarchy h(l1p(1024));
    h.access(iref(0x1000));
    h.access(iref(0x1000));
    h.access(iref(0x1004)); // same line
    EXPECT_EQ(h.stats().l1iMisses, 1u);
    EXPECT_EQ(h.stats().l2Misses, 1u); // every L1 miss goes off-chip
    EXPECT_EQ(h.stats().l2Hits, 0u);
}

TEST(SingleLevel, SplitCachesDoNotInterfere)
{
    SingleLevelHierarchy h(l1p(1024));
    // Same address as instruction and data: both must miss once
    // (separate arrays), then both hit.
    h.access(iref(0x5000));
    h.access(dref(0x5000));
    h.access(iref(0x5000));
    h.access(dref(0x5000));
    EXPECT_EQ(h.stats().l1iMisses, 1u);
    EXPECT_EQ(h.stats().l1dMisses, 1u);
}

TEST(SingleLevel, ConflictThrashing)
{
    SingleLevelHierarchy h(l1p(1024));
    // Two data lines 1 KB apart thrash a 1 KB DM cache.
    for (int i = 0; i < 10; ++i) {
        h.access(dref(0x0000));
        h.access(dref(0x0400));
    }
    EXPECT_EQ(h.stats().l1dMisses, 20u);
}

TEST(SingleLevel, MissRateArithmetic)
{
    SingleLevelHierarchy h(l1p(1024));
    h.access(dref(0x0));
    h.access(dref(0x0));
    h.access(dref(0x0));
    h.access(dref(0x0));
    EXPECT_DOUBLE_EQ(h.stats().l1MissRate(), 0.25);
    EXPECT_DOUBLE_EQ(h.stats().globalMissRate(), 0.25);
}

TEST(Hierarchy, WarmupExcludedFromStats)
{
    TraceBuffer t;
    t.append(0x0, RefType::Load);    // cold miss (warmup)
    t.append(0x0, RefType::Load);    // hit (warmup)
    t.append(0x0, RefType::Load);    // hit (measured)
    t.append(0x100, RefType::Load);  // miss (measured)
    SingleLevelHierarchy h(l1p(1024));
    h.simulate(t, /*warmup_refs=*/2);
    EXPECT_EQ(h.stats().totalRefs(), 2u);
    EXPECT_EQ(h.stats().l1dMisses, 1u);
}

TEST(Hierarchy, WarmupLargerThanTraceIsSafe)
{
    TraceBuffer t;
    t.append(0x0, RefType::Load);
    SingleLevelHierarchy h(l1p(1024));
    h.simulate(t, 100);
    EXPECT_EQ(h.stats().totalRefs(), 0u);
}

TEST(TwoLevelInclusive, L2CatchesL1ConflictMisses)
{
    // Two lines conflict in a 1 KB DM L1 but coexist in a 4-way L2.
    TwoLevelHierarchy h(l1p(1024), l2p(8192, 4),
                        TwoLevelPolicy::Inclusive);
    for (int i = 0; i < 10; ++i) {
        h.access(dref(0x0000));
        h.access(dref(0x0400));
    }
    const auto &s = h.stats();
    EXPECT_EQ(s.l1dMisses, 20u);
    EXPECT_EQ(s.l2Misses, 2u); // only the two cold misses
    EXPECT_EQ(s.l2Hits, 18u);
}

TEST(TwoLevelInclusive, SameLineLivesInBothLevels)
{
    TwoLevelHierarchy h(l1p(1024), l2p(8192, 4),
                        TwoLevelPolicy::Inclusive);
    h.access(dref(0x1230));
    EXPECT_TRUE(h.dcache().contains(0x1230));
    EXPECT_TRUE(h.l2cache().contains(0x1230));
}

TEST(TwoLevelInclusive, MixedL2SharesCodeAndData)
{
    TwoLevelHierarchy h(l1p(1024), l2p(8192, 4),
                        TwoLevelPolicy::Inclusive);
    h.access(iref(0x4000));
    h.access(dref(0x8000));
    EXPECT_TRUE(h.l2cache().contains(0x4000));
    EXPECT_TRUE(h.l2cache().contains(0x8000));
}

TEST(TwoLevelStrictInclusive, L2EvictionInvalidatesL1)
{
    // L1 larger than the (direct-mapped) L2, so two lines can
    // coexist in L1 while conflicting in L2: lines 0x00 and 0x40
    // land in L1 sets 0 and 64 but both in L2 set 0.
    TwoLevelHierarchy h(l1p(2048), l2p(1024, 1),
                        TwoLevelPolicy::StrictInclusive);
    h.access(dref(0x0000));
    h.access(dref(0x0400)); // L2 evicts line 0 -> back-invalidation
    EXPECT_FALSE(h.dcache().contains(0x0000));
    EXPECT_TRUE(h.dcache().contains(0x0400));
}

TEST(TwoLevelMostlyInclusive, L2EvictionLeavesL1Alone)
{
    TwoLevelHierarchy h(l1p(2048), l2p(1024, 1),
                        TwoLevelPolicy::Inclusive);
    h.access(dref(0x0000));
    h.access(dref(0x0400)); // evicts line 0 from DM L2 (same set)...
    EXPECT_TRUE(h.dcache().contains(0x0000)); // ...but L1 keeps it
}

TEST(TwoLevel, RejectsMismatchedLineSizes)
{
    CacheParams l1 = l1p(1024);
    CacheParams l2 = l2p(8192, 4);
    l2.lineBytes = 32;
    EXPECT_EXIT(TwoLevelHierarchy(l1, l2, TwoLevelPolicy::Inclusive),
                ::testing::ExitedWithCode(1), "line sizes");
}

TEST(VictimCache, CatchesConflictMisses)
{
    // 1 KB DM L1 with a 4-line victim buffer: the 2-line ping-pong
    // misses twice (cold) then always hits the buffer.
    VictimCacheHierarchy h(l1p(1024), 4);
    for (int i = 0; i < 10; ++i) {
        h.access(dref(0x0000));
        h.access(dref(0x0400));
    }
    const auto &s = h.stats();
    EXPECT_EQ(s.l1dMisses, 20u);
    EXPECT_EQ(s.l2Misses, 2u);
    EXPECT_EQ(s.l2Hits, 18u);
    EXPECT_EQ(s.swaps, 18u);
}

TEST(VictimCache, LineNeverInBothL1AndBuffer)
{
    VictimCacheHierarchy h(l1p(1024), 4);
    Pcg32 rng(123);
    for (int i = 0; i < 2000; ++i) {
        std::uint32_t a = rng.nextBounded(4096) * 16;
        h.access(dref(a));
        // Exclusion invariant of a victim cache.
        ASSERT_FALSE(h.dcache().contains(a) &&
                     h.victimBuffer().contains(a));
    }
}

TEST(VictimCache, CapacityMissesStillGoOffChip)
{
    VictimCacheHierarchy h(l1p(1024), 2);
    // Sweep far more lines than L1 + buffer hold.
    for (std::uint32_t a = 0; a < 64 * 1024; a += 16)
        h.access(dref(a));
    EXPECT_EQ(h.stats().l2Misses, 4096u);
    EXPECT_EQ(h.stats().l2Hits, 0u);
}

TEST(HierarchyStats, Accumulate)
{
    HierarchyStats a, b;
    a.instrRefs = 10;
    a.l2Hits = 2;
    b.instrRefs = 5;
    b.l2Hits = 3;
    b.swaps = 7;
    a += b;
    EXPECT_EQ(a.instrRefs, 15u);
    EXPECT_EQ(a.l2Hits, 5u);
    EXPECT_EQ(a.swaps, 7u);
}

TEST(HierarchyStats, RatesWithNoTraffic)
{
    HierarchyStats s;
    EXPECT_EQ(s.l1MissRate(), 0.0);
    EXPECT_EQ(s.l2LocalMissRate(), 0.0);
    EXPECT_EQ(s.globalMissRate(), 0.0);
}
