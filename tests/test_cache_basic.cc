/**
 * @file
 * Unit tests for the single cache array: geometry, hit/miss
 * sequences, replacement, invalidation, dirty tracking.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "cache/cache.hh"

using namespace tlc;

namespace {

CacheParams
makeParams(std::uint64_t size, std::uint32_t assoc,
           ReplPolicy repl = ReplPolicy::LRU, std::uint32_t line = 16)
{
    CacheParams p;
    p.sizeBytes = size;
    p.lineBytes = line;
    p.assoc = assoc;
    p.repl = repl;
    return p;
}

} // namespace

TEST(CacheGeometry, DirectMapped)
{
    Cache c(makeParams(1024, 1));
    EXPECT_EQ(c.numSets(), 64u);
    EXPECT_EQ(c.ways(), 1u);
    EXPECT_EQ(c.lineShift(), 4u);
}

TEST(CacheGeometry, FourWay)
{
    Cache c(makeParams(64 * 1024, 4));
    EXPECT_EQ(c.numSets(), 1024u);
    EXPECT_EQ(c.ways(), 4u);
}

TEST(CacheGeometry, FullyAssociative)
{
    Cache c(makeParams(512, 0));
    EXPECT_EQ(c.numSets(), 1u);
    EXPECT_EQ(c.ways(), 32u);
}

TEST(CacheGeometry, LineAndSetExtraction)
{
    Cache c(makeParams(1024, 1)); // 64 sets, 16B lines
    EXPECT_EQ(c.lineAddrOf(0x0000), 0u);
    EXPECT_EQ(c.lineAddrOf(0x000f), 0u);
    EXPECT_EQ(c.lineAddrOf(0x0010), 1u);
    EXPECT_EQ(c.setOf(c.lineAddrOf(0x0010)), 1u);
    // Line 64 wraps back to set 0.
    EXPECT_EQ(c.setOf(c.lineAddrOf(64 * 16)), 0u);
}

TEST(CacheBasic, MissThenHit)
{
    Cache c(makeParams(1024, 1));
    EXPECT_FALSE(c.contains(0x100));
    EXPECT_FALSE(c.lookupAndTouch(0x100));
    c.fill(0x100);
    EXPECT_TRUE(c.contains(0x100));
    EXPECT_TRUE(c.lookupAndTouch(0x100));
    // Same line, different byte.
    EXPECT_TRUE(c.lookupAndTouch(0x10f));
    // Next line misses.
    EXPECT_FALSE(c.lookupAndTouch(0x110));
}

TEST(CacheBasic, DirectMappedConflict)
{
    Cache c(makeParams(1024, 1));
    // 0x0 and 0x400 (1KB apart) map to the same set.
    c.fill(0x0);
    EXPECT_TRUE(c.contains(0x0));
    Cache::Victim v = c.fill(0x400);
    EXPECT_TRUE(v.valid);
    EXPECT_EQ(v.lineAddr, 0u);
    EXPECT_FALSE(c.contains(0x0));
    EXPECT_TRUE(c.contains(0x400));
}

TEST(CacheBasic, TwoWayHoldsBothConflictingLines)
{
    Cache c(makeParams(1024, 2));
    c.fill(0x0);
    Cache::Victim v = c.fill(0x400);
    EXPECT_FALSE(v.valid);
    EXPECT_TRUE(c.contains(0x0));
    EXPECT_TRUE(c.contains(0x400));
}

TEST(CacheBasic, VictimReportsDirtyState)
{
    Cache c(makeParams(1024, 1));
    c.fill(0x0, /*dirty=*/true);
    Cache::Victim v = c.fill(0x400);
    EXPECT_TRUE(v.valid);
    EXPECT_TRUE(v.dirty);

    c.fill(0x810); // set 1, clean
    Cache::Victim v2 = c.fill(0x410); // conflicts in set 1
    EXPECT_TRUE(v2.valid);
    EXPECT_FALSE(v2.dirty);
}

TEST(CacheBasic, SetDirtyOnHit)
{
    Cache c(makeParams(1024, 1));
    c.fill(0x0);
    EXPECT_TRUE(c.lookupAndTouch(0x0, /*is_store=*/true));
    Cache::Victim v = c.fill(0x400);
    EXPECT_TRUE(v.dirty);
}

TEST(CacheBasic, InvalidateRemovesLine)
{
    Cache c(makeParams(1024, 1));
    c.fill(0x100);
    EXPECT_TRUE(c.invalidate(0x100));
    EXPECT_FALSE(c.contains(0x100));
    EXPECT_FALSE(c.invalidate(0x100)); // already gone
}

TEST(CacheBasic, ResidentLineCount)
{
    Cache c(makeParams(1024, 2));
    EXPECT_EQ(c.residentLines(), 0u);
    c.fill(0x000);
    c.fill(0x100);
    c.fill(0x400);
    EXPECT_EQ(c.residentLines(), 3u);
    c.reset();
    EXPECT_EQ(c.residentLines(), 0u);
}

TEST(CacheLru, EvictsLeastRecentlyUsed)
{
    Cache c(makeParams(64, 0, ReplPolicy::LRU)); // 4 lines, FA
    c.fill(0x00);
    c.fill(0x10);
    c.fill(0x20);
    c.fill(0x30);
    // Touch 0x00 so 0x10 becomes LRU.
    EXPECT_TRUE(c.lookupAndTouch(0x00));
    Cache::Victim v = c.fill(0x40);
    EXPECT_TRUE(v.valid);
    EXPECT_EQ(v.lineAddr, 1u); // line of 0x10
    EXPECT_TRUE(c.contains(0x00));
}

TEST(CacheFifo, EvictsFirstInserted)
{
    Cache c(makeParams(64, 0, ReplPolicy::FIFO)); // 4 lines, FA
    c.fill(0x00);
    c.fill(0x10);
    c.fill(0x20);
    c.fill(0x30);
    // Touching 0x00 must NOT save it under FIFO.
    EXPECT_TRUE(c.lookupAndTouch(0x00));
    Cache::Victim v = c.fill(0x40);
    EXPECT_TRUE(v.valid);
    EXPECT_EQ(v.lineAddr, 0u);
}

TEST(CacheRandom, VictimAlwaysFromCorrectSet)
{
    Cache c(makeParams(2048, 4, ReplPolicy::Random)); // 32 sets
    // Fill set 3 completely: lines with set index 3.
    auto addr_of = [&](std::uint64_t i) {
        return (3 + i * 32) * 16; // line addresses congruent to 3 mod 32
    };
    for (int i = 0; i < 4; ++i)
        c.fill(addr_of(i));
    for (int i = 4; i < 50; ++i) {
        Cache::Victim v = c.fill(addr_of(i));
        ASSERT_TRUE(v.valid);
        EXPECT_EQ(c.setOf(v.lineAddr), 3u);
    }
}

TEST(CacheRandom, UsesInvalidWaysFirst)
{
    Cache c(makeParams(1024, 4, ReplPolicy::Random));
    // First 4 fills into one set must not evict anything.
    for (int i = 0; i < 4; ++i) {
        Cache::Victim v = c.fill(i * 1024 / 4 * 4); // set 0 lines
        EXPECT_FALSE(v.valid) << "fill " << i;
    }
}

TEST(CacheInsertPreferring, UpdatesExistingLineWithoutEviction)
{
    Cache c(makeParams(1024, 1));
    c.fill(0x100);
    bool swapped = true;
    Cache::Victim v = c.insertLinePreferring(
        c.lineAddrOf(0x100), /*dirty=*/true, 0, false, &swapped);
    EXPECT_FALSE(v.valid);
    EXPECT_FALSE(swapped);
    // Dirty accumulated.
    Cache::Victim v2 = c.fill(0x500);
    EXPECT_TRUE(v2.dirty);
}

TEST(CacheInsertPreferring, SwapsWithPreferredLineInSameSet)
{
    Cache c(makeParams(2048, 4));
    // Lines A and B in the same set (set width 2048/4/16 = 32 sets).
    std::uint64_t a_line = 5;          // set 5
    std::uint64_t b_line = 5 + 32;     // also set 5
    c.fill(a_line * 16);
    bool swapped = false;
    Cache::Victim v = c.insertLinePreferring(b_line, false, a_line, true,
                                             &swapped);
    EXPECT_TRUE(swapped);
    EXPECT_TRUE(v.valid);
    EXPECT_EQ(v.lineAddr, a_line);
    EXPECT_FALSE(c.contains(a_line * 16));
    EXPECT_TRUE(c.contains(b_line * 16));
}

TEST(CacheInsertPreferring, IgnoresPreferredFromOtherSet)
{
    Cache c(makeParams(2048, 4));
    std::uint64_t a_line = 5;      // set 5
    std::uint64_t b_line = 6 + 32; // set 6
    c.fill(a_line * 16);
    bool swapped = false;
    c.insertLinePreferring(b_line, false, a_line, true, &swapped);
    EXPECT_FALSE(swapped);
    EXPECT_TRUE(c.contains(a_line * 16)); // untouched
    EXPECT_TRUE(c.contains(b_line * 16));
}

TEST(CacheInsertPreferring, FallsBackToPolicyWhenPreferredAbsent)
{
    Cache c(makeParams(64, 0, ReplPolicy::LRU)); // 4 lines FA
    c.fill(0x00);
    c.fill(0x10);
    c.fill(0x20);
    c.fill(0x30);
    bool swapped = false;
    // Preferred line 99 is not resident; LRU (0x00) must go.
    Cache::Victim v = c.insertLinePreferring(7, false, 99, true, &swapped);
    EXPECT_FALSE(swapped);
    EXPECT_TRUE(v.valid);
    EXPECT_EQ(v.lineAddr, 0u);
}

TEST(CacheParamsValidation, ToStringFormats)
{
    EXPECT_EQ(makeParams(32 * 1024, 1, ReplPolicy::Random).toString(),
              "32K/16B/1-way/random");
    EXPECT_EQ(makeParams(512, 0, ReplPolicy::LRU).toString(),
              "512/16B/full/lru");
}

// Parameterized sweep: hit-after-fill and victim-set-correctness
// hold for every geometry the paper's design space touches.
class CacheGeometrySweep
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, int>>
{
};

TEST_P(CacheGeometrySweep, FillThenHitEverywhere)
{
    auto [size, assoc] = GetParam();
    Cache c(makeParams(size, assoc, ReplPolicy::Random));
    // Touch one line per set plus conflicting lines.
    for (std::uint64_t s = 0; s < c.numSets(); s += 7) {
        std::uint64_t addr = (s + c.numSets() * 3) * 16;
        c.fill(addr);
        EXPECT_TRUE(c.lookupAndTouch(addr));
    }
    EXPECT_LE(c.residentLines(), c.params().numLines());
}

INSTANTIATE_TEST_SUITE_P(
    AllGeometries, CacheGeometrySweep,
    ::testing::Combine(::testing::Values(1024, 2048, 4096, 8192, 16384,
                                         32768, 65536, 131072, 262144),
                       ::testing::Values(1, 2, 4, 8)));
