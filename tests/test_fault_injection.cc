/**
 * @file
 * Fault-injection tests: the CorruptingStreamBuf itself, the trace
 * readers under randomized corruption and exhaustive truncation, and
 * the fail-soft sweep path (an unreadable benchmark trace plus an
 * invalid configuration must be reported and skipped, not fatal).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/explorer.hh"
#include "trace/io.hh"
#include "trace/workload.hh"
#include "util/faultio.hh"

using namespace tlc;

namespace {

std::string
payload(std::size_t n, std::uint32_t seed = 5)
{
    Pcg32 rng(seed, 0xabc);
    std::string s;
    s.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        s.push_back(static_cast<char>(rng.nextBounded(256)));
    return s;
}

} // namespace

// ---------------------------------------------------------------------
// CorruptingStreamBuf unit tests.
// ---------------------------------------------------------------------

TEST(FaultInjector, NoFaultsIsIdentity)
{
    const std::string bytes = payload(4096);
    FaultSpec spec; // all rates zero, no truncation
    EXPECT_EQ(corruptCopy(bytes, spec), bytes);
}

TEST(FaultInjector, SameSeedSameFaults)
{
    const std::string bytes = payload(8192);
    FaultSpec spec;
    spec.bitFlipRate = 0.01;
    spec.dropRate = 0.002;
    spec.dupRate = 0.002;
    spec.seed = 1234;
    const std::string a = corruptCopy(bytes, spec);
    const std::string b = corruptCopy(bytes, spec);
    EXPECT_EQ(a, b);
    EXPECT_NE(a, bytes);

    spec.seed = 1235;
    EXPECT_NE(corruptCopy(bytes, spec), a);
}

TEST(FaultInjector, BitFlipsPreserveLengthAndLandNearRate)
{
    const std::string bytes = payload(100000);
    FaultSpec spec;
    spec.bitFlipRate = 0.01;
    spec.seed = 9;

    std::istringstream src(bytes);
    CorruptingStreamBuf cb(*src.rdbuf(), spec);
    std::string out;
    std::streambuf::int_type c;
    while (!std::streambuf::traits_type::eq_int_type(
               c = cb.sbumpc(), std::streambuf::traits_type::eof()))
        out.push_back(static_cast<char>(c));

    ASSERT_EQ(out.size(), bytes.size());
    EXPECT_EQ(cb.bytesRead(), bytes.size());

    std::size_t diffs = 0;
    for (std::size_t i = 0; i < bytes.size(); ++i)
        if (out[i] != bytes[i])
            ++diffs;
    EXPECT_EQ(diffs, cb.faultsInjected());
    // 1000 expected flips; allow a wide statistical band.
    EXPECT_GT(diffs, 700u);
    EXPECT_LT(diffs, 1300u);
}

TEST(FaultInjector, TruncationCutsExactlyThere)
{
    const std::string bytes = payload(1000);
    FaultSpec spec;
    spec.truncateAfter = 137;
    const std::string out = corruptCopy(bytes, spec);
    EXPECT_EQ(out, bytes.substr(0, 137));

    spec.truncateAfter = 0;
    EXPECT_TRUE(corruptCopy(bytes, spec).empty());

    spec.truncateAfter = bytes.size() + 50; // beyond EOF: no cut
    EXPECT_EQ(corruptCopy(bytes, spec), bytes);
}

TEST(FaultInjector, DropsShortenAndDupsLengthen)
{
    const std::string bytes = payload(50000);
    FaultSpec spec;
    spec.dropRate = 0.01;
    spec.seed = 3;
    EXPECT_LT(corruptCopy(bytes, spec).size(), bytes.size());

    FaultSpec dup;
    dup.dupRate = 0.01;
    dup.seed = 3;
    EXPECT_GT(corruptCopy(bytes, dup).size(), bytes.size());
}

// ---------------------------------------------------------------------
// Readers under injected faults. The contract for every sample:
// either the read succeeds (corruption happened to be benign or
// missed the sample), or it fails with a Status and the destination
// buffer is exactly as it was on entry. Never a crash; under
// -DTLC_SANITIZE=ON, never a sanitizer report.
// ---------------------------------------------------------------------

namespace {

struct ReadOutcome
{
    std::size_t accepted = 0;
    std::size_t rejected = 0;
};

template <typename ReaderFn>
void
expectRobust(const std::string &image, ReaderFn read, ReadOutcome &out,
             const char *what, std::uint64_t seed)
{
    TraceBuffer buf;
    buf.append(0xcafe0000u, RefType::Instr);
    buf.append(0xcafe0010u, RefType::Store);

    std::istringstream is(image);
    Status s = read(is, buf);
    if (s.ok()) {
        ++out.accepted;
        return;
    }
    ++out.rejected;
    EXPECT_FALSE(s.message().empty()) << what << " seed " << seed;
    ASSERT_EQ(buf.size(), 2u)
        << what << " seed " << seed << ": failed read left partial "
        << "data; status: " << s.toString();
    EXPECT_EQ(buf[0].addr, 0xcafe0000u);
    EXPECT_EQ(buf[1].addr, 0xcafe0010u);
    EXPECT_EQ(buf.instrRefs(), 1u);
    EXPECT_EQ(buf.storeRefs(), 1u);
}

} // namespace

TEST(ReadersUnderFaults, BitFlippedTracesNeverLeavePartialData)
{
    TraceBuffer orig = Workloads::generate(Benchmark::Espresso, 3000, 1);
    std::ostringstream raw_os, comp_os, text_os;
    writeBinaryTrace(raw_os, orig);
    writeCompressedTrace(comp_os, orig);
    writeTextTrace(text_os, orig);
    const std::string raw = raw_os.str();
    const std::string comp = comp_os.str();
    const std::string text = text_os.str();
    // The legacy footer-less compressed format: same record encoding,
    // version 2, no trailing CRC. Version-3 images reject essentially
    // every payload flip via the footer, so this flavour carries the
    // "flips are not universally fatal" half of the property — a flip
    // that still decodes structurally is accepted here, as every
    // compressed trace was before the footer existed.
    std::string legacy = comp.substr(0, comp.size() - 4);
    legacy[4] = 2;

    ReadOutcome out;
    for (std::uint64_t seed = 1; seed <= 150; ++seed) {
        FaultSpec spec;
        spec.bitFlipRate = 1e-3; // the acceptance-criteria rate
        spec.dropRate = 2.5e-4;
        spec.dupRate = 2.5e-4;
        spec.seed = seed;
        expectRobust(corruptCopy(raw, spec),
                     [](std::istream &is, TraceBuffer &b) {
                         return readBinaryTrace(is, b);
                     }, out, "raw", seed);
        expectRobust(corruptCopy(comp, spec),
                     [](std::istream &is, TraceBuffer &b) {
                         return readCompressedTrace(is, b);
                     }, out, "compressed", seed);
        expectRobust(corruptCopy(legacy, spec),
                     [](std::istream &is, TraceBuffer &b) {
                         return readCompressedTrace(is, b);
                     }, out, "legacy compressed", seed);
        expectRobust(corruptCopy(text, spec),
                     [](std::istream &is, TraceBuffer &b) {
                         return readTextTrace(is, b);
                     }, out, "text", seed);
    }
    // At 1e-3 per byte over multi-KB images, most samples must have
    // been corrupted enough to be rejected; and the flips must not
    // have been universally fatal either (header-miss cases pass).
    EXPECT_GT(out.rejected, 100u);
    EXPECT_GT(out.accepted, 0u);
}

TEST(ReadersUnderFaults, EveryPrefixTruncationOfABinaryTraceIsHandled)
{
    TraceBuffer orig;
    for (int i = 0; i < 12; ++i)
        orig.append(0x1000u + 16u * static_cast<std::uint32_t>(i),
                    static_cast<RefType>(i % 3));
    std::ostringstream os;
    writeBinaryTrace(os, orig);
    const std::string full = os.str();

    for (std::size_t cut = 0; cut < full.size(); ++cut) {
        TraceBuffer buf;
        buf.append(0xbeef0000u, RefType::Load);
        std::istringstream is(full.substr(0, cut));
        Status s = readBinaryTrace(is, buf);
        ASSERT_FALSE(s.ok()) << "cut at " << cut;
        // A cut just past the header is indistinguishable from a
        // hostile count, so either truncation code is correct.
        EXPECT_TRUE(s.code() == StatusCode::Truncated ||
                    s.code() == StatusCode::CountTooLarge)
            << "cut at " << cut << ": " << s.toString();
        ASSERT_EQ(buf.size(), 1u) << "cut at " << cut;
        EXPECT_EQ(buf[0].addr, 0xbeef0000u);
    }

    // The whole file still reads back fine.
    TraceBuffer buf;
    std::istringstream is(full);
    EXPECT_TRUE(readBinaryTrace(is, buf));
    EXPECT_EQ(buf.size(), orig.size());
}

TEST(ReadersUnderFaults, EveryPrefixTruncationOfACompressedTraceIsHandled)
{
    TraceBuffer orig;
    std::uint32_t addr = 0x00400000;
    for (int i = 0; i < 20; ++i) {
        addr += (i % 4 == 3) ? 0x10000 : 4; // small and large deltas
        orig.append(addr, static_cast<RefType>(i % 3));
    }
    std::ostringstream os;
    writeCompressedTrace(os, orig);
    const std::string full = os.str();

    for (std::size_t cut = 0; cut < full.size(); ++cut) {
        TraceBuffer buf;
        std::istringstream is(full.substr(0, cut));
        Status s = readCompressedTrace(is, buf);
        ASSERT_FALSE(s.ok()) << "cut at " << cut;
        EXPECT_TRUE(s.code() == StatusCode::Truncated ||
                    s.code() == StatusCode::CountTooLarge)
            << "cut at " << cut << ": " << s.toString();
        EXPECT_TRUE(buf.empty()) << "cut at " << cut;
    }
}

// ---------------------------------------------------------------------
// Fail-soft sweep: the acceptance-criteria scenario. One benchmark
// routed to an unreadable trace file and one invalid configuration in
// the list; the remaining points must complete and the FailureReport
// must name both failures.
// ---------------------------------------------------------------------

TEST(FailSoftSweep, BadTraceAndBadConfigAreReportedAndSkipped)
{
    MissRateEvaluator eval(20000);
    Explorer explorer(eval);

    SystemAssumptions assume;
    std::vector<SystemConfig> configs;
    configs.push_back({8 * 1024, 0, assume});
    configs.push_back({3 * 1024, 0, assume});       // not a power of two
    configs.push_back({8 * 1024, 64 * 1024, assume});
    configs.push_back({16 * 1024, 128 * 1024, assume});

    // Healthy benchmark: only the invalid config fails.
    {
        FailureReport report;
        auto points = explorer.evaluateAll(Benchmark::Eqntott, configs,
                                           &report);
        EXPECT_EQ(points.size(), 3u);
        ASSERT_EQ(report.size(), 1u);
        EXPECT_TRUE(report.mentions("3:0"));
        EXPECT_EQ(report.failures()[0].status.code(),
                  StatusCode::InvalidConfig);
        for (const DesignPoint &p : points)
            EXPECT_GT(p.tpi.tpi, 0.0);
    }

    // Same benchmark routed to a nonexistent trace file (routing is
    // construction-time, so this is a fresh evaluator): the whole
    // benchmark fails once, on top of the invalid config.
    {
        EvaluatorOptions opts;
        opts.traceRefs = 20000;
        opts.traceFiles[Benchmark::Eqntott] = "/nonexistent/eqntott.trc";
        MissRateEvaluator routed(std::move(opts));
        Explorer routedExplorer(routed);
        FailureReport report;
        auto points = routedExplorer.evaluateAll(Benchmark::Eqntott,
                                                 configs, &report);
        EXPECT_TRUE(points.empty());
        ASSERT_EQ(report.size(), 1u);
        EXPECT_TRUE(report.mentions("eqntott"));
        EXPECT_EQ(report.failures()[0].status.code(),
                  StatusCode::IoError);
        // The summary table names the benchmark and the error.
        const std::string summary = report.summary();
        EXPECT_NE(summary.find("eqntott"), std::string::npos) << summary;
        EXPECT_NE(summary.find("io-error"), std::string::npos) << summary;
    }

    // A corrupt (not just missing) trace file is just as fail-soft,
    // and a second healthy benchmark still sweeps cleanly while the
    // broken routing is in place.
    std::string bad = ::testing::TempDir() + "/tlc_corrupt_bench.trc";
    {
        std::ofstream os(bad, std::ios::binary);
        os << "TLCT garbage follows the magic";
    }
    {
        EvaluatorOptions opts;
        opts.traceRefs = 20000;
        opts.traceFiles[Benchmark::Tomcatv] = bad;
        MissRateEvaluator routed(std::move(opts));
        Explorer routedExplorer(routed);
        FailureReport report;
        auto tom = routedExplorer.evaluateAll(Benchmark::Tomcatv,
                                              configs, &report);
        EXPECT_TRUE(tom.empty());
        EXPECT_TRUE(report.mentions("tomcatv"));

        auto li = routedExplorer.evaluateAll(Benchmark::Li, configs,
                                             &report);
        EXPECT_EQ(li.size(), 3u);
        // Combined report: tomcatv's trace + li's invalid config.
        EXPECT_EQ(report.size(), 2u);
        EXPECT_TRUE(report.mentions("3:0"));
    }
    std::remove(bad.c_str());
}

TEST(FailSoftSweep, TryEvaluateReportsInvalidConfigBeforeSimulating)
{
    MissRateEvaluator eval(20000);
    Explorer explorer(eval);

    SystemConfig bad;
    bad.l1Bytes = 8 * 1024;
    bad.l2Bytes = 5000; // not a power of two
    auto r = explorer.tryEvaluate(Benchmark::Doduc, bad);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::InvalidConfig);
    // The status names the offending level of the offending config.
    EXPECT_NE(r.status().message().find("L2"), std::string::npos)
        << r.status().message();

    SystemConfig good;
    good.l1Bytes = 8 * 1024;
    good.l2Bytes = 64 * 1024;
    auto ok = explorer.tryEvaluate(Benchmark::Doduc, good);
    ASSERT_TRUE(ok.ok());
    EXPECT_GT(ok.value().tpi.tpi, 0.0);
    EXPECT_GT(ok.value().areaRbe, 0.0);
}

TEST(FailSoftSweep, TraceFileRoutingServesFilesAndReportsErrors)
{
    // Write a real trace for fpppp, route to it at construction, and
    // verify the evaluator serves the file's records rather than
    // synthesis.
    TraceBuffer small = Workloads::generate(Benchmark::Fpppp, 5000, 2);
    std::string path = ::testing::TempDir() + "/tlc_fpppp.trc";
    ASSERT_TRUE(saveTraceFile(path, small));

    {
        EvaluatorOptions opts;
        opts.traceRefs = 20000;
        opts.traceFiles[Benchmark::Fpppp] = path;
        MissRateEvaluator eval(std::move(opts));
        auto t = eval.tryTrace(Benchmark::Fpppp);
        ASSERT_TRUE(t.ok()) << t.status().toString();
        EXPECT_EQ(t.value()->size(), small.size());
    }

    // Routing to a bad path reports IoError; the Status names the
    // benchmark and the path.
    {
        EvaluatorOptions opts;
        opts.traceRefs = 20000;
        opts.traceFiles[Benchmark::Fpppp] = "/nonexistent/x.trc";
        MissRateEvaluator eval(std::move(opts));
        auto bad = eval.tryTrace(Benchmark::Fpppp);
        ASSERT_FALSE(bad.ok());
        EXPECT_EQ(bad.status().code(), StatusCode::IoError);
        EXPECT_NE(bad.status().message().find("fpppp"),
                  std::string::npos)
            << bad.status().message();
        EXPECT_NE(bad.status().message().find("/nonexistent/x.trc"),
                  std::string::npos)
            << bad.status().message();

        // tryMissStats surfaces the same failure.
        SystemConfig cfg;
        auto stats = eval.tryMissStats(Benchmark::Fpppp, cfg);
        EXPECT_FALSE(stats.ok());
        EXPECT_EQ(stats.status().code(), StatusCode::IoError);
    }

    std::remove(path.c_str());
}

TEST(FailSoftSweep, WorkloadTryByNameReportsUnknownNames)
{
    auto ok = Workloads::tryByName("gcc1");
    ASSERT_TRUE(ok.ok());
    EXPECT_EQ(ok.value(), Benchmark::Gcc1);

    auto bad = Workloads::tryByName("quake3");
    ASSERT_FALSE(bad.ok());
    EXPECT_EQ(bad.status().code(), StatusCode::UnknownName);
    // The message lists the valid names to help the user.
    EXPECT_NE(bad.status().message().find("tomcatv"), std::string::npos)
        << bad.status().message();
}

TEST(FailSoftSweep, SweepWithReportMatchesClassicSweepWhenHealthy)
{
    MissRateEvaluator eval(20000);
    Explorer explorer(eval);
    SystemAssumptions assume;

    FailureReport report;
    auto with = explorer.sweep(Benchmark::Espresso, assume, true, false,
                               &report);
    auto classic = explorer.sweep(Benchmark::Espresso, assume, true,
                                  false);
    EXPECT_TRUE(report.empty());
    EXPECT_EQ(report.summary(),
              std::string("sweep completed with no failures\n"));
    ASSERT_EQ(with.size(), classic.size());
    for (std::size_t i = 0; i < with.size(); ++i)
        EXPECT_DOUBLE_EQ(with[i].tpi.tpi, classic[i].tpi.tpi);
}
