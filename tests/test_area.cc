/**
 * @file
 * Tests for the rbe area model: Mulder's constants, monotonicity,
 * the dual-port factor, and the paper's area anchors (§2.4, §3, §5).
 */

#include <gtest/gtest.h>

#include "area/area_model.hh"
#include "timing/access_time.hh"
#include "util/units.hh"

using namespace tlc;

namespace {

SramGeometry
geom(std::uint64_t size, std::uint32_t assoc)
{
    SramGeometry g;
    g.sizeBytes = size;
    g.blockBytes = 16;
    g.assoc = assoc;
    return g;
}

/** Area of the timing-optimal organization (what the explorer uses). */
double
optimalArea(std::uint64_t size, std::uint32_t assoc,
            CellType cell = CellType::SinglePorted6T)
{
    static AccessTimeModel timing;
    static AreaModel area;
    SramGeometry g = geom(size, assoc);
    TimingResult t = timing.optimize(g);
    return area.area(g, t.dataOrg, t.tagOrg, cell);
}

} // namespace

TEST(AreaModel, CoreCellsMatchMulder)
{
    // The data core of a C-byte cache is exactly 8C bits at 0.6 rbe.
    AreaModel m;
    SramGeometry g = geom(8_KiB, 1);
    AreaBreakdown b = m.breakdown(g, ArrayOrganization{1, 1, 1},
                                  ArrayOrganization{1, 1, 1});
    EXPECT_DOUBLE_EQ(b.dataCells, 8.0 * 8_KiB * 0.6);
    EXPECT_GT(b.dataPeripheral, 0);
    EXPECT_GT(b.tagCells, 0);
}

TEST(AreaModel, ComparatorIsSixCellsPerBitPerWay)
{
    // §5: "a comparator only occupies 6x0.6 rbe's" (per bit).
    AreaModel m;
    SramGeometry g = geom(8_KiB, 4); // tagBits = 32 - 7 - 4 = 21
    AreaBreakdown b = m.breakdown(g, ArrayOrganization{1, 1, 1},
                                  ArrayOrganization{1, 1, 1});
    EXPECT_DOUBLE_EQ(b.comparators, 4 * 21 * 6 * 0.6);
}

TEST(AreaModel, ComparatorAreaInsignificant)
{
    // §5: set-associativity's comparators are negligible next to the
    // data and tag arrays.
    AreaModel m;
    SramGeometry g = geom(64_KiB, 4);
    AreaBreakdown b = m.breakdown(g, ArrayOrganization{1, 4, 1},
                                  ArrayOrganization{1, 2, 1});
    EXPECT_LT(b.comparators / b.total(), 0.01);
}

TEST(AreaModel, MonotoneInSize)
{
    double prev = 0;
    for (std::uint64_t s = 1_KiB; s <= 256_KiB; s *= 2) {
        double a = optimalArea(s, 1);
        EXPECT_GT(a, prev) << s;
        prev = a;
    }
}

TEST(AreaModel, RoughlyLinearInSizeForLargeCaches)
{
    double a64 = optimalArea(64_KiB, 1);
    double a128 = optimalArea(128_KiB, 1);
    double ratio = a128 / a64;
    EXPECT_GT(ratio, 1.6);
    EXPECT_LT(ratio, 2.4);
}

TEST(AreaModel, SetAssociativeCostsLittleExtra)
{
    // §5: the extra area of a 4-way L2 "does not significantly
    // affect the performance for a given area".
    double dm = optimalArea(128_KiB, 1);
    double sa = optimalArea(128_KiB, 4);
    EXPECT_LT(std::abs(sa - dm) / dm, 0.15);
}

TEST(AreaModel, DualPortedDoublesArea)
{
    // §6: dual-ported cells take twice the area.
    double sp = optimalArea(16_KiB, 1, CellType::SinglePorted6T);
    double dp = optimalArea(16_KiB, 1, CellType::DualPorted);
    EXPECT_NEAR(dp / sp, 2.0, 1e-9);
}

TEST(AreaModel, PeripheralShareShrinksWithSize)
{
    // §2.4: "For small memories, the area required by RAM peripheral
    // logic can significantly increase the average area per bit."
    AreaModel m;
    AccessTimeModel timing;
    auto peripheral_share = [&](std::uint64_t size) {
        SramGeometry g = geom(size, 1);
        TimingResult t = timing.optimize(g);
        AreaBreakdown b = m.breakdown(g, t.dataOrg, t.tagOrg);
        return (b.dataPeripheral + b.tagPeripheral) / b.total();
    };
    EXPECT_GT(peripheral_share(1_KiB), peripheral_share(256_KiB));
}

// --- the paper's anchors --------------------------------------------

TEST(AreaAnchors, PairOf32KCachesNearHalfMillionRbe)
{
    // §3: "...about 500,000 rbe's... corresponds to an optimum
    // single-level cache size of about 32KB" (I + D pair).
    double pair = 2 * optimalArea(32_KiB, 1);
    EXPECT_GT(pair, 300000);
    EXPECT_LT(pair, 700000);
}

TEST(AreaAnchors, PairOf1KCachesMatchesFigureLeftEdge)
{
    // Figures 3-8 start around 2x10^4 rbe at the 1K:0 point.
    double pair = 2 * optimalArea(1_KiB, 1);
    EXPECT_GT(pair, 10000);
    EXPECT_LT(pair, 50000);
}

TEST(AreaAnchors, PairOf256KCachesInFigureRange)
{
    // The figures' right edge: a few million rbe.
    double pair = 2 * optimalArea(256_KiB, 1);
    EXPECT_GT(pair, 1500000);
    EXPECT_LT(pair, 8000000);
}
