/**
 * @file
 * Tests for the seven workload models: Table 1 metadata, ratio
 * preservation, determinism, and the miss-rate anchors the paper
 * quotes (espresso ~1.0 %, eqntott ~1.5 %, tomcatv ~10.9 % at 32 KB,
 * tomcatv flat with size).
 */

#include <gtest/gtest.h>

#include "cache/single_level.hh"
#include "trace/workload.hh"

using namespace tlc;

namespace {

constexpr std::uint64_t kRefs = 400000;

double
missRateAt(Benchmark b, std::uint64_t l1_bytes,
           std::uint64_t refs = kRefs)
{
    TraceBuffer t = Workloads::generate(b, refs);
    CacheParams p;
    p.sizeBytes = l1_bytes;
    p.lineBytes = 16;
    p.assoc = 1;
    SingleLevelHierarchy h(p);
    h.simulate(t, refs / 10);
    return h.stats().l1MissRate();
}

} // namespace

TEST(Workloads, AllListsSevenInTableOrder)
{
    const auto &all = Workloads::all();
    ASSERT_EQ(all.size(), 7u);
    EXPECT_EQ(Workloads::info(all.front()).name, std::string("gcc1"));
    EXPECT_EQ(Workloads::info(all.back()).name, std::string("tomcatv"));
}

TEST(Workloads, Table1Metadata)
{
    const WorkloadInfo &gcc = Workloads::info(Benchmark::Gcc1);
    EXPECT_DOUBLE_EQ(gcc.paperInstrRefsM, 22.7);
    EXPECT_DOUBLE_EQ(gcc.paperDataRefsM, 7.2);
    EXPECT_NEAR(gcc.paperTotalRefsM(), 29.9, 1e-9);

    const WorkloadInfo &tom = Workloads::info(Benchmark::Tomcatv);
    EXPECT_DOUBLE_EQ(tom.paperInstrRefsM, 1986.3);
    EXPECT_DOUBLE_EQ(tom.paperDataRefsM, 963.6);
}

TEST(Workloads, ByNameRoundTrips)
{
    for (Benchmark b : Workloads::all())
        EXPECT_EQ(Workloads::byName(Workloads::info(b).name), b);
}

TEST(Workloads, ByNameRejectsUnknown)
{
    EXPECT_EXIT(Workloads::byName("dhrystone"),
                ::testing::ExitedWithCode(1), "unknown benchmark");
}

TEST(Workloads, GenerationIsDeterministic)
{
    TraceBuffer a = Workloads::generate(Benchmark::Li, 50000);
    TraceBuffer b = Workloads::generate(Benchmark::Li, 50000);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        ASSERT_EQ(a[i], b[i]);
}

TEST(Workloads, RequestedLengthHonoured)
{
    for (Benchmark b : Workloads::all())
        EXPECT_EQ(Workloads::generate(b, 10000).totalRefs(), 10000u);
}

// The models must preserve Table 1's data-per-instruction ratios.
class WorkloadRatio : public ::testing::TestWithParam<Benchmark>
{
};

TEST_P(WorkloadRatio, MatchesTable1)
{
    Benchmark b = GetParam();
    TraceBuffer t = Workloads::generate(b, 200000);
    double want = Workloads::info(b).dataPerInstr();
    double got = static_cast<double>(t.dataRefs()) /
                 static_cast<double>(t.instrRefs());
    EXPECT_NEAR(got, want, 0.02) << Workloads::info(b).name;
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, WorkloadRatio,
    ::testing::ValuesIn(Workloads::all()),
    [](const ::testing::TestParamInfo<Benchmark> &info) {
        return Workloads::info(info.param).name;
    });

// Every reference stream must stay inside the 32-bit layout regions.
class WorkloadSanity : public ::testing::TestWithParam<Benchmark>
{
};

TEST_P(WorkloadSanity, MixesInstructionAndDataRefs)
{
    TraceBuffer t = Workloads::generate(GetParam(), 100000);
    EXPECT_GT(t.instrRefs(), 0u);
    EXPECT_GT(t.loadRefs(), 0u);
    EXPECT_GT(t.storeRefs(), 0u);
}

TEST_P(WorkloadSanity, InstructionRefsComeFromCodeSegment)
{
    TraceBuffer t = Workloads::generate(GetParam(), 50000);
    for (const auto &rec : t) {
        if (rec.type == RefType::Instr) {
            EXPECT_GE(rec.addr, 0x00400000u);
            EXPECT_LT(rec.addr, 0x01000000u);
        } else {
            EXPECT_GE(rec.addr, 0x10000000u);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, WorkloadSanity,
    ::testing::ValuesIn(Workloads::all()),
    [](const ::testing::TestParamInfo<Benchmark> &info) {
        return Workloads::info(info.param).name;
    });

// --- the paper's quantitative anchors (Section 3) -------------------

TEST(WorkloadAnchors, Espresso32KMissRateNearPaper)
{
    // Paper: 0.0100 at 32 KB. Allow a generous band; the shape
    // matters more than the third decimal.
    double m = missRateAt(Benchmark::Espresso, 32 * 1024);
    EXPECT_GT(m, 0.005);
    EXPECT_LT(m, 0.018);
}

TEST(WorkloadAnchors, Eqntott32KMissRateNearPaper)
{
    // Paper: 0.0149 at 32 KB.
    double m = missRateAt(Benchmark::Eqntott, 32 * 1024);
    EXPECT_GT(m, 0.008);
    EXPECT_LT(m, 0.025);
}

TEST(WorkloadAnchors, Tomcatv32KMissRateNearPaper)
{
    // Paper: 0.109 at 32 KB.
    double m = missRateAt(Benchmark::Tomcatv, 32 * 1024);
    EXPECT_GT(m, 0.08);
    EXPECT_LT(m, 0.14);
}

TEST(WorkloadAnchors, TomcatvFlatWithCacheSize)
{
    // Paper: "the miss rate does not drop appreciably as the cache
    // size is increased".
    double m8 = missRateAt(Benchmark::Tomcatv, 8 * 1024);
    double m128 = missRateAt(Benchmark::Tomcatv, 128 * 1024);
    EXPECT_LT(m8 - m128, 0.02);
}

TEST(WorkloadAnchors, MissRatesDecreaseWithSize)
{
    for (Benchmark b : Workloads::all()) {
        double m1 = missRateAt(b, 1024);
        double m16 = missRateAt(b, 16 * 1024);
        double m256 = missRateAt(b, 256 * 1024);
        EXPECT_GE(m1 + 1e-9, m16) << Workloads::info(b).name;
        EXPECT_GE(m16 + 1e-9, m256) << Workloads::info(b).name;
    }
}

TEST(WorkloadAnchors, FppppHasLargeInstructionFootprint)
{
    // fpppp's signature: big I-side miss drop between 64 KB and
    // 128-256 KB (huge straight-line code). Compare as a difference
    // rather than a ratio: at this trace length compulsory misses
    // put a floor under the 256 KB rate.
    double m64 = missRateAt(Benchmark::Fpppp, 64 * 1024);
    double m256 = missRateAt(Benchmark::Fpppp, 256 * 1024);
    EXPECT_GT(m64 - m256, 0.02);
}
