/**
 * @file
 * Differential tests for the parallel sweep engine: the same sweep
 * run serially and with 1/2/8 workers must produce byte-identical
 * DesignPoint vectors (miss counts, timing, area, TPI), envelopes,
 * and FailureReport contents in the same (input-index) order — the
 * determinism guarantee every figure of the paper now rests on.
 * Includes fail-soft sweeps with invalid configurations and corrupt
 * or missing trace files, and the timing-memo key regression.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "core/explorer.hh"
#include "util/parallel.hh"
#include "util/units.hh"

using namespace tlc;

namespace {

/// Cheap but long enough that warmup, L2 activity and random
/// replacement all engage.
constexpr std::uint64_t kRefs = 30000;

/** Restores the worker-count override when a test exits. */
class WorkerCountGuard
{
  public:
    explicit WorkerCountGuard(unsigned n) { setParallelWorkerCount(n); }
    ~WorkerCountGuard() { setParallelWorkerCount(0); }
};

struct SweepResult
{
    std::vector<DesignPoint> points;
    std::vector<SweepFailure> failures;
};

/**
 * One complete sweep over @p configs with @p workers threads, on a
 * fresh evaluator/explorer pair so memoization cannot leak results
 * between the runs being compared. @p trace_file optionally routes
 * the benchmark to an on-disk trace.
 */
SweepResult
runSweep(unsigned workers, Benchmark b,
         const std::vector<SystemConfig> &configs,
         const std::string &trace_file = "")
{
    WorkerCountGuard guard(workers);
    EvaluatorOptions opts;
    opts.traceRefs = kRefs;
    if (!trace_file.empty())
        opts.traceFiles[b] = trace_file;
    MissRateEvaluator ev(std::move(opts));
    Explorer ex(ev);
    FailureReport report;
    SweepResult r;
    r.points = ex.evaluateAll(b, configs, &report);
    r.failures = report.failures();
    return r;
}

/** Bitwise equality of every priced field of two design points. */
void
expectIdenticalPoint(const DesignPoint &a, const DesignPoint &b,
                     std::size_t i)
{
    SCOPED_TRACE("point " + std::to_string(i));
    EXPECT_EQ(a.config.label(), b.config.label());
    EXPECT_EQ(a.config.l1Bytes, b.config.l1Bytes);
    EXPECT_EQ(a.config.l2Bytes, b.config.l2Bytes);
    EXPECT_EQ(a.areaRbe, b.areaRbe);
    EXPECT_EQ(a.l1Timing.accessNs, b.l1Timing.accessNs);
    EXPECT_EQ(a.l1Timing.cycleNs, b.l1Timing.cycleNs);
    EXPECT_EQ(a.l2Timing.accessNs, b.l2Timing.accessNs);
    EXPECT_EQ(a.l2Timing.cycleNs, b.l2Timing.cycleNs);
    EXPECT_EQ(a.miss.instrRefs, b.miss.instrRefs);
    EXPECT_EQ(a.miss.dataRefs, b.miss.dataRefs);
    EXPECT_EQ(a.miss.l1iMisses, b.miss.l1iMisses);
    EXPECT_EQ(a.miss.l1dMisses, b.miss.l1dMisses);
    EXPECT_EQ(a.miss.l2Hits, b.miss.l2Hits);
    EXPECT_EQ(a.miss.l2Misses, b.miss.l2Misses);
    EXPECT_EQ(a.miss.swaps, b.miss.swaps);
    EXPECT_EQ(a.miss.offchipWritebacks, b.miss.offchipWritebacks);
    EXPECT_EQ(a.tpi.tpi, b.tpi.tpi);
    EXPECT_EQ(a.tpi.l2CycleNs, b.tpi.l2CycleNs);
    EXPECT_EQ(a.tpi.l2CycleCpu, b.tpi.l2CycleCpu);
    EXPECT_EQ(a.tpi.baseTimeNs, b.tpi.baseTimeNs);
    EXPECT_EQ(a.tpi.l2HitTimeNs, b.tpi.l2HitTimeNs);
    EXPECT_EQ(a.tpi.l2MissTimeNs, b.tpi.l2MissTimeNs);
}

void
expectIdentical(const SweepResult &a, const SweepResult &b)
{
    ASSERT_EQ(a.points.size(), b.points.size());
    for (std::size_t i = 0; i < a.points.size(); ++i)
        expectIdenticalPoint(a.points[i], b.points[i], i);

    ASSERT_EQ(a.failures.size(), b.failures.size());
    for (std::size_t i = 0; i < a.failures.size(); ++i) {
        SCOPED_TRACE("failure " + std::to_string(i));
        EXPECT_EQ(a.failures[i].subject, b.failures[i].subject);
        EXPECT_EQ(a.failures[i].status.code(),
                  b.failures[i].status.code());
        EXPECT_EQ(a.failures[i].status.message(),
                  b.failures[i].status.message());
    }

    // The envelope is derived data, but it is what the figures
    // print, so pin it down too.
    Envelope ea = Explorer::envelopeOf(a.points);
    Envelope eb = Explorer::envelopeOf(b.points);
    ASSERT_EQ(ea.points().size(), eb.points().size());
    for (std::size_t i = 0; i < ea.points().size(); ++i) {
        EXPECT_EQ(ea.points()[i].area, eb.points()[i].area);
        EXPECT_EQ(ea.points()[i].tpi, eb.points()[i].tpi);
        EXPECT_EQ(ea.points()[i].label, eb.points()[i].label);
    }
}

std::string
writeTempFile(const std::string &name, const std::string &bytes)
{
    std::string path = ::testing::TempDir() + name;
    std::ofstream os(path, std::ios::binary);
    os.write(bytes.data(),
             static_cast<std::streamsize>(bytes.size()));
    return path;
}

} // namespace

TEST(ParallelDifferential, FullDesignSpaceMatchesSerial)
{
    SystemAssumptions a;
    std::vector<SystemConfig> configs = DesignSpace::enumerate(a);
    ASSERT_GT(configs.size(), 40u);

    SweepResult serial = runSweep(1, Benchmark::Espresso, configs);
    EXPECT_EQ(serial.points.size(), configs.size());
    EXPECT_TRUE(serial.failures.empty());

    for (unsigned workers : {2u, 8u}) {
        SCOPED_TRACE("workers=" + std::to_string(workers));
        expectIdentical(serial,
                        runSweep(workers, Benchmark::Espresso, configs));
    }
}

TEST(ParallelDifferential, FailSoftSweepMatchesSerial)
{
    SystemAssumptions a;
    std::vector<SystemConfig> configs;
    for (std::uint64_t l1 : {8_KiB, 16_KiB, 32_KiB}) {
        SystemConfig c;
        c.l1Bytes = l1;
        c.l2Bytes = 8 * l1;
        c.assume = a;
        configs.push_back(c);
    }
    // Two invalid points at fixed positions: a non-power-of-two L1
    // and a line size larger than the L2.
    SystemConfig bad1;
    bad1.l1Bytes = 3000;
    bad1.assume = a;
    configs.insert(configs.begin() + 1, bad1);
    SystemConfig bad2;
    bad2.l1Bytes = 8_KiB;
    bad2.l2Bytes = 8;
    bad2.assume = a;
    configs.push_back(bad2);

    SweepResult serial = runSweep(1, Benchmark::Gcc1, configs);
    ASSERT_EQ(serial.points.size(), 3u);
    ASSERT_EQ(serial.failures.size(), 2u);
    // Failures ordered by input index, not completion order.
    EXPECT_EQ(serial.failures[0].subject, bad1.label());
    EXPECT_EQ(serial.failures[1].subject, bad2.label());
    EXPECT_EQ(serial.failures[0].status.code(),
              StatusCode::InvalidConfig);

    for (unsigned workers : {2u, 8u}) {
        SCOPED_TRACE("workers=" + std::to_string(workers));
        expectIdentical(serial, runSweep(workers, Benchmark::Gcc1,
                                         configs));
    }
}

TEST(ParallelDifferential, CorruptTraceFileMatchesSerial)
{
    std::string path = writeTempFile("tlc_corrupt.trc",
                                     "not a trace !!!\xff\xfe\x01");
    SystemAssumptions a;
    std::vector<SystemConfig> configs = DesignSpace::enumerate(a);

    SweepResult serial =
        runSweep(1, Benchmark::Gcc1, configs, path);
    EXPECT_TRUE(serial.points.empty());
    ASSERT_EQ(serial.failures.size(), 1u);
    EXPECT_EQ(serial.failures[0].subject, "benchmark gcc1");
    EXPECT_EQ(serial.failures[0].status.code(), StatusCode::ParseError);

    for (unsigned workers : {2u, 8u}) {
        SCOPED_TRACE("workers=" + std::to_string(workers));
        expectIdentical(serial, runSweep(workers, Benchmark::Gcc1,
                                         configs, path));
    }
    std::remove(path.c_str());
}

TEST(ParallelDifferential, MissingTraceFileMatchesSerial)
{
    std::string path = ::testing::TempDir() + "tlc_missing_trace.trc";
    SystemAssumptions a;
    std::vector<SystemConfig> configs = DesignSpace::enumerate(a);

    SweepResult serial =
        runSweep(1, Benchmark::Fpppp, configs, path);
    EXPECT_TRUE(serial.points.empty());
    ASSERT_EQ(serial.failures.size(), 1u);
    EXPECT_EQ(serial.failures[0].status.code(), StatusCode::IoError);

    expectIdentical(serial,
                    runSweep(8, Benchmark::Fpppp, configs, path));
}

TEST(ParallelDifferential, FailureReportToleratesConcurrentAdds)
{
    // Explorer itself records failures post-join, but a report
    // shared by an application-level parallel loop must not race.
    WorkerCountGuard guard(8);
    FailureReport report;
    parallelFor(64, [&](std::size_t i) {
        report.add("subject " + std::to_string(i),
                   statusf(StatusCode::InternalError, "failure %zu", i));
    });
    EXPECT_EQ(report.size(), 64u);
    EXPECT_TRUE(report.mentions("subject 63"));
}

TEST(ParallelDifferential, SharedExplorerSweepIsReusable)
{
    // One explorer pricing the same space twice (second pass fully
    // memoized) must agree with itself — the memo caches are keyed
    // on exact geometry, not insertion order.
    WorkerCountGuard guard(4);
    MissRateEvaluator ev(kRefs);
    Explorer ex(ev);
    SystemAssumptions a;
    auto first = ex.sweep(Benchmark::Li, a);
    auto second = ex.sweep(Benchmark::Li, a);
    ASSERT_EQ(first.size(), second.size());
    for (std::size_t i = 0; i < first.size(); ++i)
        expectIdenticalPoint(first[i], second[i], i);
}
