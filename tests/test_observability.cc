/**
 * @file
 * Tests for the observability layer: metrics registry semantics
 * (create-or-get, kinds, dumps), concurrent counter increments under
 * the parallelFor worker team (run under TSan via the test_parallel
 * target), the scoped phase profiler, the Chrome trace-event
 * exporter, the JSON helpers that back all of them, sweep progress
 * callbacks, and the run manifest schema.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/explorer.hh"
#include "util/json.hh"
#include "util/metrics.hh"
#include "util/parallel.hh"
#include "util/profiler.hh"
#include "util/run_manifest.hh"
#include "util/trace_event.hh"

using namespace tlc;

// ---------------------------------------------------------------- JSON

TEST(Json, EscapeCoversControlAndQuoteCharacters)
{
    EXPECT_EQ(jsonEscape("plain"), "plain");
    EXPECT_EQ(jsonEscape("a\"b"), "a\\\"b");
    EXPECT_EQ(jsonEscape("a\\b"), "a\\\\b");
    EXPECT_EQ(jsonEscape("a\nb\tc"), "a\\nb\\tc");
    EXPECT_EQ(jsonEscape(std::string(1, '\x01')), "\\u0001");
    EXPECT_EQ(jsonQuote("x"), "\"x\"");
}

TEST(Json, NumberRoundTripsAndSanitisesNonFinite)
{
    EXPECT_EQ(jsonNumber(0.0), "0");
    EXPECT_EQ(jsonNumber(42.0), "42");
    EXPECT_EQ(jsonNumber(-1.5), "-1.5");
    // Shortest form that parses back to the same double.
    double v = 0.1;
    EXPECT_EQ(std::stod(jsonNumber(v)), v);
    v = 1.0 / 3.0;
    EXPECT_EQ(std::stod(jsonNumber(v)), v);
    // JSON has no NaN/Inf; the helper degrades to 0.
    EXPECT_EQ(jsonNumber(std::nan("")), "0");
    EXPECT_EQ(jsonNumber(HUGE_VAL), "0");
}

TEST(Json, SyntaxCheckerAcceptsValidDocuments)
{
    EXPECT_TRUE(jsonSyntaxOk("{}"));
    EXPECT_TRUE(jsonSyntaxOk("[]"));
    EXPECT_TRUE(jsonSyntaxOk("42"));
    EXPECT_TRUE(jsonSyntaxOk("-1.5e-3"));
    EXPECT_TRUE(jsonSyntaxOk("\"str\""));
    EXPECT_TRUE(jsonSyntaxOk("true"));
    EXPECT_TRUE(jsonSyntaxOk(" { \"a\" : [1, 2.5, null, {\"b\": "
                             "\"\\u0041\\n\"}] } "));
}

TEST(Json, SyntaxCheckerRejectsMalformedDocuments)
{
    EXPECT_FALSE(jsonSyntaxOk(""));
    EXPECT_FALSE(jsonSyntaxOk("{"));
    EXPECT_FALSE(jsonSyntaxOk("{\"a\": 1,}"));
    EXPECT_FALSE(jsonSyntaxOk("[1, 2") );
    EXPECT_FALSE(jsonSyntaxOk("{\"a\" 1}"));
    EXPECT_FALSE(jsonSyntaxOk("{} trailing"));
    EXPECT_FALSE(jsonSyntaxOk("01"));
    EXPECT_FALSE(jsonSyntaxOk("+1"));
    EXPECT_FALSE(jsonSyntaxOk("\"unterminated"));
    EXPECT_FALSE(jsonSyntaxOk("{'a': 1}"));
    EXPECT_FALSE(jsonSyntaxOk("nul"));
}

// ------------------------------------------------------------- metrics

TEST(Metrics, CreateOrGetReturnsTheSameObject)
{
    MetricsRegistry reg;
    MetricCounter &a = reg.counter("cache.l1d.misses");
    MetricCounter &b = reg.counter("cache.l1d.misses");
    EXPECT_EQ(&a, &b);
    a.inc(3);
    EXPECT_EQ(b.value(), 3u);
    EXPECT_EQ(reg.size(), 1u);
    EXPECT_TRUE(reg.has("cache.l1d.misses"));
    EXPECT_FALSE(reg.has("cache.l1d"));
}

TEST(Metrics, ReferencesSurviveLaterRegistrations)
{
    // The hot-path contract: hold the reference, never re-look-up.
    MetricsRegistry reg;
    MetricCounter &early = reg.counter("a.first");
    for (int i = 0; i < 100; ++i)
        reg.counter("b.fill." + std::to_string(i));
    early.inc();
    EXPECT_EQ(reg.counter("a.first").value(), 1u);
}

TEST(Metrics, GaugeAndHistogramBasics)
{
    MetricsRegistry reg;
    MetricGauge &g = reg.gauge("explore.speedup");
    g.set(3.75);
    EXPECT_DOUBLE_EQ(reg.gauge("explore.speedup").value(), 3.75);

    MetricHistogram &h = reg.histogram("trace.burst");
    h.sample(1);
    h.sample(2);
    h.sample(1024);
    EXPECT_EQ(h.snapshot().count(), 3u);

    std::vector<std::string> names = reg.names();
    ASSERT_EQ(names.size(), 2u);
    EXPECT_EQ(names[0], "explore.speedup"); // sorted
    EXPECT_EQ(names[1], "trace.burst");
}

TEST(Metrics, ResetZeroesValuesButKeepsRegistrations)
{
    MetricsRegistry reg;
    reg.counter("c").inc(7);
    reg.gauge("g").set(1.5);
    reg.histogram("h").sample(9);
    reg.resetAll();
    EXPECT_EQ(reg.size(), 3u);
    EXPECT_EQ(reg.counter("c").value(), 0u);
    EXPECT_DOUBLE_EQ(reg.gauge("g").value(), 0.0);
    EXPECT_EQ(reg.histogram("h").snapshot().count(), 0u);
}

TEST(Metrics, JsonDumpMatchesGolden)
{
    MetricsRegistry reg;
    reg.counter("cache.l2.misses").inc(12);
    reg.counter("cache.l1.hits").inc(88);
    reg.gauge("explore.speedup").set(2.5);
    reg.histogram("lat").sample(1);
    reg.histogram("lat").sample(5);

    const std::string expect = "{\n"
                               "  \"cache.l1.hits\": 88,\n"
                               "  \"cache.l2.misses\": 12,\n"
                               "  \"explore.speedup\": 2.5,\n"
                               "  \"lat\": {\"count\": 2, "
                               "\"buckets\": [1, 0, 1]}\n"
                               "}";
    EXPECT_EQ(reg.toJson(), expect);
    EXPECT_TRUE(jsonSyntaxOk(reg.toJson()));
}

TEST(Metrics, TextDumpListsEveryMetric)
{
    MetricsRegistry reg;
    reg.counter("alpha").inc(5);
    reg.gauge("beta").set(0.25);
    std::string text = reg.toText();
    EXPECT_NE(text.find("alpha"), std::string::npos);
    EXPECT_NE(text.find("5"), std::string::npos);
    EXPECT_NE(text.find("beta"), std::string::npos);
}

TEST(Metrics, EmptyRegistryDumpsAreValid)
{
    MetricsRegistry reg;
    EXPECT_EQ(reg.size(), 0u);
    EXPECT_TRUE(jsonSyntaxOk(reg.toJson()));
}

TEST(Metrics, ConcurrentIncrementsFromWorkerTeamLoseNothing)
{
    // The core thread-safety claim, meant to run under TSan: many
    // workers bumping one counter concurrently lose no increments.
    setParallelWorkerCount(4);
    MetricsRegistry reg;
    MetricCounter &c = reg.counter("concurrent.hits");
    MetricHistogram &h = reg.histogram("concurrent.sizes");
    constexpr std::size_t n = 20000;
    parallelFor(n, [&](std::size_t i) {
        c.inc();
        if (i % 100 == 0)
            h.sample(i);
    });
    setParallelWorkerCount(0);
    EXPECT_EQ(c.value(), n);
    EXPECT_EQ(h.snapshot().count(), n / 100);
}

TEST(Metrics, ConcurrentRegistrationYieldsOneObjectPerName)
{
    setParallelWorkerCount(4);
    MetricsRegistry reg;
    std::atomic<MetricCounter *> seen{nullptr};
    std::atomic<int> mismatches{0};
    parallelFor(1000, [&](std::size_t) {
        MetricCounter &c = reg.counter("race.shared");
        c.inc();
        MetricCounter *expected = nullptr;
        if (!seen.compare_exchange_strong(expected, &c) &&
            expected != &c)
            mismatches.fetch_add(1);
    });
    setParallelWorkerCount(0);
    EXPECT_EQ(mismatches.load(), 0);
    EXPECT_EQ(reg.counter("race.shared").value(), 1000u);
}

TEST(Metrics, GlobalRegistryHasLibraryInstrumentation)
{
    // The library registers its bundles lazily on first use; force
    // one use and check the namespaces exist.
    MissRateEvaluator ev(2000);
    Explorer ex(ev);
    SystemAssumptions a;
    ASSERT_FALSE(ex.sweep(Benchmark::Gcc1, a, true, false).empty());
    MetricsRegistry &g = MetricsRegistry::global();
    EXPECT_TRUE(g.has("explore.points.priced"));
    EXPECT_TRUE(g.has("cache.simulations"));
    EXPECT_TRUE(g.has("trace.synthetic.records"));
    EXPECT_GE(g.counter("cache.simulations").value(), 1u);
    EXPECT_TRUE(jsonSyntaxOk(g.toJson()));
}

// ------------------------------------------------------------ profiler

TEST(Profiler, DisabledTimersRecordNothing)
{
    Profiler p;
    ASSERT_FALSE(p.enabled());
    {
        ScopedTimer t(phase::kSimL1, p);
    }
    EXPECT_TRUE(p.snapshot().empty());
}

TEST(Profiler, EnabledTimersAggregateAcrossCalls)
{
    Profiler p;
    p.setEnabled(true);
    for (int i = 0; i < 3; ++i) {
        ScopedTimer t(phase::kSimL2, p);
    }
    {
        ScopedTimer t("custom.phase", p);
    }
    auto snap = p.snapshot();
    ASSERT_EQ(snap.size(), 2u);
    EXPECT_EQ(snap[phase::kSimL2].calls, 3u);
    EXPECT_EQ(snap["custom.phase"].calls, 1u);
    EXPECT_GE(snap[phase::kSimL2].totalNs, 0u);
    EXPECT_GE(snap[phase::kSimL2].maxNs,
              snap[phase::kSimL2].totalNs / 3);
}

TEST(Profiler, ArmingIsDecidedAtConstruction)
{
    // Flipping the switch mid-scope must not tear a half-armed timer.
    Profiler p;
    {
        ScopedTimer t(phase::kSimL1, p);
        p.setEnabled(true); // too late for this timer
    }
    EXPECT_TRUE(p.snapshot().empty());
    {
        ScopedTimer t(phase::kSimL1, p);
        p.setEnabled(false); // armed timers still record
    }
    EXPECT_EQ(p.snapshot()[phase::kSimL1].calls, 1u);
}

TEST(Profiler, RecordsMergeFromConcurrentWorkers)
{
    Profiler p;
    p.setEnabled(true);
    setParallelWorkerCount(4);
    parallelFor(200, [&](std::size_t) {
        ScopedTimer t(phase::kModelTpi, p);
    });
    setParallelWorkerCount(0);
    EXPECT_EQ(p.snapshot()[phase::kModelTpi].calls, 200u);
}

TEST(Profiler, DumpsAreWellFormed)
{
    Profiler p;
    p.setEnabled(true);
    p.record(phase::kTraceLoad, 1500000); // 1.5 ms
    p.record(phase::kTraceLoad, 500000);
    std::string json = p.toJson();
    EXPECT_TRUE(jsonSyntaxOk(json));
    EXPECT_NE(json.find("\"trace.load\""), std::string::npos);
    EXPECT_NE(json.find("\"calls\": 2"), std::string::npos);
    EXPECT_NE(json.find("\"total_ms\": 2"), std::string::npos);

    std::string text = p.toText();
    EXPECT_NE(text.find("trace.load"), std::string::npos);
    EXPECT_NE(text.find("calls"), std::string::npos);

    p.reset();
    EXPECT_TRUE(p.snapshot().empty());
    EXPECT_TRUE(p.enabled()); // reset drops data, not the switch
    EXPECT_TRUE(jsonSyntaxOk(p.toJson()));
}

// --------------------------------------------------------- trace events

TEST(TraceEvent, InactiveByDefault)
{
    EXPECT_EQ(TraceEventRecorder::active(), nullptr);
}

TEST(TraceEvent, WritesValidChromeTraceJson)
{
    TraceEventRecorder rec;
    auto t0 = TraceEventRecorder::Clock::now();
    auto t1 = t0 + std::chrono::microseconds(250);
    rec.complete("64:1:16/1024:4:32", "design-point", t0, t1, 0,
                 "{\"benchmark\": \"gcc1\", \"index\": 0}");
    rec.complete("128:2:32", "design-point", t0, t1, 1);
    EXPECT_EQ(rec.size(), 2u);

    std::ostringstream os;
    rec.write(os);
    std::string json = os.str();
    EXPECT_TRUE(jsonSyntaxOk(json));
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
    // One thread_name metadata event per distinct track.
    EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
    EXPECT_NE(json.find("\"worker-0\""), std::string::npos);
    EXPECT_NE(json.find("\"worker-1\""), std::string::npos);
    EXPECT_NE(json.find("\"benchmark\": \"gcc1\""), std::string::npos);
}

TEST(TraceEvent, ClampsInvertedIntervalsToZeroDuration)
{
    TraceEventRecorder rec;
    auto t0 = TraceEventRecorder::Clock::now();
    rec.complete("backwards", "t", t0 + std::chrono::microseconds(5),
                 t0, 0);
    std::ostringstream os;
    rec.write(os);
    EXPECT_TRUE(jsonSyntaxOk(os.str()));
    EXPECT_NE(os.str().find("\"dur\": 0"), std::string::npos);
}

TEST(TraceEvent, EscapesEventNames)
{
    TraceEventRecorder rec;
    auto t0 = TraceEventRecorder::Clock::now();
    rec.complete("quote\"back\\slash", "c", t0, t0, 0);
    std::ostringstream os;
    rec.write(os);
    EXPECT_TRUE(jsonSyntaxOk(os.str()));
}

TEST(TraceEvent, ConcurrentRecordingIsSafeAndComplete)
{
    TraceEventRecorder rec;
    setParallelWorkerCount(4);
    parallelFor(500, [&](std::size_t i) {
        auto now = TraceEventRecorder::Clock::now();
        rec.complete("slice" + std::to_string(i), "t", now, now,
                     parallelWorkerId());
    });
    setParallelWorkerCount(0);
    EXPECT_EQ(rec.size(), 500u);
    std::ostringstream os;
    rec.write(os);
    EXPECT_TRUE(jsonSyntaxOk(os.str()));
}

// ------------------------------------------------------------ progress

TEST(Progress, FinalUpdateAlwaysFiresWithDoneEqualTotal)
{
    MissRateEvaluator ev(2000);
    Explorer ex(ev);
    std::atomic<std::size_t> fires{0};
    std::atomic<std::size_t> last_done{0}, last_total{0};
    ex.setProgressCallback(
        [&](const SweepProgress &p) {
            fires.fetch_add(1);
            last_done.store(p.done);
            last_total.store(p.total);
            EXPECT_LE(p.done, p.total);
            EXPECT_GE(p.elapsedSeconds, 0.0);
            EXPECT_GE(p.etaSeconds, 0.0);
        },
        /*min_interval_seconds=*/0.0);
    SystemAssumptions a;
    auto points = ex.sweep(Benchmark::Gcc1, a, true, false);
    EXPECT_FALSE(points.empty());
    EXPECT_GE(fires.load(), 1u);
    EXPECT_EQ(last_done.load(), points.size());
    EXPECT_EQ(last_total.load(), points.size());
}

TEST(Progress, UninstalledCallbackIsQuiet)
{
    MissRateEvaluator ev(2000);
    Explorer ex(ev);
    std::atomic<std::size_t> fires{0};
    ex.setProgressCallback(
        [&](const SweepProgress &) { fires.fetch_add(1); }, 0.0);
    ex.setProgressCallback(nullptr);
    SystemAssumptions a;
    ex.sweep(Benchmark::Gcc1, a, true, false);
    EXPECT_EQ(fires.load(), 0u);
}

TEST(Progress, SweepSlicesLandOnTheActiveRecorder)
{
    MissRateEvaluator ev(2000);
    Explorer ex(ev);
    TraceEventRecorder rec;
    TraceEventRecorder::setActive(&rec);
    SystemAssumptions a;
    auto points = ex.sweep(Benchmark::Gcc1, a, true, false);
    TraceEventRecorder::setActive(nullptr);
    // One design-point slice per point, plus at least one sim-batch
    // slice from the batched simulation underneath.
    EXPECT_GT(rec.size(), points.size());
    std::ostringstream os;
    rec.write(os);
    std::string json = os.str();
    EXPECT_TRUE(jsonSyntaxOk(json));
    std::size_t design_points = 0;
    const std::string needle = "\"cat\": \"design-point\"";
    for (std::size_t pos = json.find(needle); pos != std::string::npos;
         pos = json.find(needle, pos + needle.size()))
        ++design_points;
    EXPECT_EQ(design_points, points.size());
    EXPECT_NE(json.find("\"cat\": \"sim-batch\""), std::string::npos);
}

// ------------------------------------------------------------ manifest

TEST(Manifest, JsonCarriesSchemaAndEmbeddedDumps)
{
    const char *argv[] = {"/path/to/design_explorer", "--refs=1000",
                          "--progress"};
    RunManifest m = RunManifest::fromCommandLine(3, argv);
    m.workload = "gcc1";
    m.traceRefs = 1000;
    m.pointsPriced = 42;
    m.failures = 1;
    m.wallSeconds = 0.5;

    EXPECT_EQ(m.tool, "design_explorer");
    EXPECT_EQ(m.commandLine,
              "/path/to/design_explorer --refs=1000 --progress");
    EXPECT_GE(m.threads, 1u);

    std::string json = m.toJson();
    EXPECT_TRUE(jsonSyntaxOk(json));
    for (const char *key :
         {"\"schema\": \"tlc-run-manifest-v1\"", "\"tool\"",
          "\"command\"", "\"workload\"", "\"trace_refs\"",
          "\"threads\"", "\"points_priced\"", "\"failures\"",
          "\"wall_seconds\"", "\"metrics\"", "\"phases\""})
        EXPECT_NE(json.find(key), std::string::npos) << key;
}
