/**
 * @file
 * Unit and property tests for the best-performance envelope.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "util/envelope.hh"
#include "util/random.hh"

using namespace tlc;

TEST(Envelope, EmptyInput)
{
    Envelope e = Envelope::of({});
    EXPECT_TRUE(e.empty());
    EXPECT_TRUE(std::isinf(e.bestTpiWithin(1e9)));
    EXPECT_EQ(e.bestPointWithin(1e9), nullptr);
}

TEST(Envelope, SinglePoint)
{
    Envelope e = Envelope::of({{100, 5.0, "a"}});
    ASSERT_EQ(e.points().size(), 1u);
    EXPECT_TRUE(std::isinf(e.bestTpiWithin(99)));
    EXPECT_DOUBLE_EQ(e.bestTpiWithin(100), 5.0);
    EXPECT_DOUBLE_EQ(e.bestTpiWithin(1000), 5.0);
}

TEST(Envelope, DominatedPointsDropped)
{
    // (200, 6.0) is dominated: more area, worse TPI than (100, 5.0).
    Envelope e = Envelope::of({
        {100, 5.0, "good"},
        {200, 6.0, "dominated"},
        {300, 4.0, "bigger-better"},
    });
    ASSERT_EQ(e.points().size(), 2u);
    EXPECT_EQ(e.points()[0].label, "good");
    EXPECT_EQ(e.points()[1].label, "bigger-better");
}

TEST(Envelope, StaircaseLookup)
{
    Envelope e = Envelope::of({
        {100, 5.0, "a"},
        {200, 3.0, "b"},
        {400, 2.0, "c"},
    });
    EXPECT_DOUBLE_EQ(e.bestTpiWithin(150), 5.0);
    EXPECT_DOUBLE_EQ(e.bestTpiWithin(200), 3.0);
    EXPECT_DOUBLE_EQ(e.bestTpiWithin(399), 3.0);
    EXPECT_DOUBLE_EQ(e.bestTpiWithin(400), 2.0);
    EXPECT_EQ(e.bestPointWithin(250)->label, "b");
}

TEST(Envelope, TieOnAreaKeepsBest)
{
    Envelope e = Envelope::of({
        {100, 5.0, "worse"},
        {100, 4.0, "better"},
    });
    ASSERT_EQ(e.points().size(), 1u);
    EXPECT_EQ(e.points()[0].label, "better");
}

// Property test: the envelope is monotone nonincreasing in TPI and
// strictly increasing in area, and every input point lies on or
// above it.
TEST(Envelope, PropertyNonDominatedAndMonotone)
{
    Pcg32 rng(99);
    for (int iter = 0; iter < 50; ++iter) {
        std::vector<EnvelopePoint> pts;
        int n = 2 + rng.nextBounded(60);
        for (int i = 0; i < n; ++i) {
            pts.push_back({1.0 + rng.nextBounded(10000),
                           0.5 + rng.nextDouble() * 20.0, "p"});
        }
        Envelope e = Envelope::of(pts);
        const auto &ep = e.points();
        ASSERT_FALSE(ep.empty());
        for (std::size_t i = 1; i < ep.size(); ++i) {
            EXPECT_GT(ep[i].area, ep[i - 1].area);
            EXPECT_LT(ep[i].tpi, ep[i - 1].tpi);
        }
        for (const auto &p : pts)
            EXPECT_GE(p.tpi + 1e-12, e.bestTpiWithin(p.area));
    }
}

TEST(Envelope, MeanGapSignConvention)
{
    Envelope low = Envelope::of({{100, 2.0, "l"}, {1000, 1.0, "l2"}});
    Envelope high = Envelope::of({{100, 4.0, "h"}, {1000, 3.0, "h2"}});
    EXPECT_GT(high.meanGapAgainst(low), 0.0);
    EXPECT_LT(low.meanGapAgainst(high), 0.0);
    EXPECT_NEAR(low.meanGapAgainst(low), 0.0, 1e-12);
}
