/**
 * @file
 * Unit tests for the parallelFor worker team: index coverage and
 * per-index ordering, worker-count resolution (TLC_THREADS, the
 * programmatic override, hardware fallback), serial forcing,
 * exception propagation, nested-use fallback, and the empty/single
 * range edge cases.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <mutex>
#include <optional>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/parallel.hh"

using namespace tlc;

namespace {

/**
 * Saves and restores TLC_THREADS and the programmatic override so
 * the tests can rewrite both without leaking into the rest of the
 * suite.
 */
class ParallelTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        const char *v = std::getenv("TLC_THREADS");
        saved_ = v ? std::optional<std::string>(v) : std::nullopt;
        ::unsetenv("TLC_THREADS");
        setParallelWorkerCount(0);
    }

    void TearDown() override
    {
        if (saved_)
            ::setenv("TLC_THREADS", saved_->c_str(), 1);
        else
            ::unsetenv("TLC_THREADS");
        setParallelWorkerCount(0);
    }

  private:
    std::optional<std::string> saved_;
};

} // namespace

TEST_F(ParallelTest, VisitsEveryIndexExactlyOnce)
{
    setParallelWorkerCount(8);
    constexpr std::size_t n = 5000;
    std::vector<int> hits(n, 0);
    parallelFor(n, [&](std::size_t i) { hits[i]++; });
    for (std::size_t i = 0; i < n; ++i)
        ASSERT_EQ(hits[i], 1) << "index " << i;
}

TEST_F(ParallelTest, ResultsAreOrderedByIndexNotCompletionOrder)
{
    setParallelWorkerCount(8);
    constexpr std::size_t n = 1000;
    std::vector<std::size_t> out(n, 0);
    parallelFor(n, [&](std::size_t i) { out[i] = i * i; });
    for (std::size_t i = 0; i < n; ++i)
        ASSERT_EQ(out[i], i * i);
}

TEST_F(ParallelTest, EmptyRangeNeverInvokesBody)
{
    setParallelWorkerCount(8);
    parallelFor(0, [&](std::size_t) { FAIL() << "body called"; });
}

TEST_F(ParallelTest, SingleItemRunsOnCallingThread)
{
    setParallelWorkerCount(8);
    std::thread::id body_id;
    parallelFor(1, [&](std::size_t i) {
        EXPECT_EQ(i, 0u);
        body_id = std::this_thread::get_id();
    });
    EXPECT_EQ(body_id, std::this_thread::get_id());
}

TEST_F(ParallelTest, EnvThreadsOneForcesSerial)
{
    ::setenv("TLC_THREADS", "1", 1);
    EXPECT_EQ(parallelWorkerCount(), 1u);

    const std::thread::id caller = std::this_thread::get_id();
    std::size_t calls = 0;
    parallelFor(64, [&](std::size_t) {
        EXPECT_EQ(std::this_thread::get_id(), caller);
        ++calls; // serial, so unsynchronized increment is safe
    });
    EXPECT_EQ(calls, 64u);
}

TEST_F(ParallelTest, WorkerCountResolution)
{
    unsigned hw = std::thread::hardware_concurrency();
    unsigned fallback = hw ? hw : 1;

    EXPECT_EQ(parallelWorkerCount(), fallback);

    ::setenv("TLC_THREADS", "3", 1);
    EXPECT_EQ(parallelWorkerCount(), 3u);

    // Unparsable or out-of-range values fall back to the hardware.
    ::setenv("TLC_THREADS", "0", 1);
    EXPECT_EQ(parallelWorkerCount(), fallback);
    ::setenv("TLC_THREADS", "abc", 1);
    EXPECT_EQ(parallelWorkerCount(), fallback);
    ::setenv("TLC_THREADS", "7junk", 1);
    EXPECT_EQ(parallelWorkerCount(), fallback);
    ::setenv("TLC_THREADS", "", 1);
    EXPECT_EQ(parallelWorkerCount(), fallback);
}

TEST_F(ParallelTest, ProgrammaticOverrideBeatsEnvironment)
{
    ::setenv("TLC_THREADS", "2", 1);
    setParallelWorkerCount(5);
    EXPECT_EQ(parallelWorkerCount(), 5u);
    setParallelWorkerCount(0); // cleared: back to the environment
    EXPECT_EQ(parallelWorkerCount(), 2u);
}

TEST_F(ParallelTest, ExceptionPropagatesToCaller)
{
    setParallelWorkerCount(4);
    std::atomic<std::size_t> executed{0};
    try {
        parallelFor(100, [&](std::size_t i) {
            executed.fetch_add(1);
            if (i == 3)
                throw std::runtime_error("boom at 3");
        });
        FAIL() << "exception was swallowed";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "boom at 3");
    }
    EXPECT_GE(executed.load(), 1u);
    EXPECT_LE(executed.load(), 100u);
}

TEST_F(ParallelTest, ExceptionPropagatesOnSerialPath)
{
    setParallelWorkerCount(1);
    EXPECT_THROW(parallelFor(8,
                             [&](std::size_t i) {
                                 if (i == 2)
                                     throw std::logic_error("serial");
                             }),
                 std::logic_error);
}

TEST_F(ParallelTest, NestedCallFallsBackToSerialOnWorker)
{
    setParallelWorkerCount(4);
    EXPECT_FALSE(inParallelWorker());

    constexpr std::size_t outer_n = 4, inner_n = 16;
    std::vector<int> inner_on_own_thread(outer_n, 0);
    std::vector<int> inner_hits(outer_n, 0);
    parallelFor(outer_n, [&](std::size_t o) {
        EXPECT_TRUE(inParallelWorker());
        const std::thread::id outer_id = std::this_thread::get_id();
        bool same = true;
        parallelFor(inner_n, [&](std::size_t) {
            same = same && std::this_thread::get_id() == outer_id;
            inner_hits[o]++; // serial inner loop: no race on the slot
        });
        inner_on_own_thread[o] = same;
    });
    EXPECT_FALSE(inParallelWorker());
    for (std::size_t o = 0; o < outer_n; ++o) {
        EXPECT_TRUE(inner_on_own_thread[o]) << "outer " << o;
        EXPECT_EQ(inner_hits[o], static_cast<int>(inner_n));
    }
}

TEST_F(ParallelTest, UsesDistinctWorkersWhenWideEnough)
{
    // Not a strict guarantee on a loaded machine, but with bodies
    // that block until every worker has arrived, a 2-wide team must
    // show 2 distinct thread ids.
    setParallelWorkerCount(2);
    std::mutex mu;
    std::condition_variable cv;
    std::size_t arrived = 0;
    std::set<std::thread::id> ids;
    parallelFor(2, [&](std::size_t) {
        std::unique_lock<std::mutex> lock(mu);
        ids.insert(std::this_thread::get_id());
        if (++arrived == 2)
            cv.notify_all();
        else
            cv.wait(lock, [&] { return arrived == 2; });
    });
    EXPECT_EQ(ids.size(), 2u);
}
