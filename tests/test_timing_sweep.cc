/**
 * @file
 * Parameterized sweep of the timing model over the full
 * (size, associativity) grid the experiments touch.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "timing/access_time.hh"
#include "util/units.hh"

using namespace tlc;

namespace {

const AccessTimeModel &
model()
{
    static const AccessTimeModel m;
    return m;
}

SramGeometry
geom(std::uint64_t size, std::uint32_t assoc)
{
    return SramGeometry{size, 16, assoc, 32, 64};
}

} // namespace

class TimingSweep
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, int>>
{
  protected:
    std::uint64_t size() const { return std::get<0>(GetParam()); }
    std::uint32_t assoc() const
    {
        return static_cast<std::uint32_t>(std::get<1>(GetParam()));
    }
    bool valid() const
    {
        // Need at least 2 sets for the set-mapped model.
        return size() / 16 / assoc() >= 2;
    }
};

TEST_P(TimingSweep, OptimizeProducesSaneNumbers)
{
    if (!valid())
        GTEST_SKIP();
    TimingResult r = model().optimize(geom(size(), assoc()));
    ASSERT_TRUE(r.valid);
    EXPECT_GT(r.accessNs, 0.5);
    EXPECT_LT(r.accessNs, 10.0);
    EXPECT_GT(r.cycleNs, r.accessNs);
    EXPECT_LT(r.cycleNs, r.accessNs * 2.0);
}

TEST_P(TimingSweep, ChosenOrganizationIsReproducible)
{
    if (!valid())
        GTEST_SKIP();
    TimingResult r = model().optimize(geom(size(), assoc()));
    TimingResult re =
        model().evaluate(geom(size(), assoc()), r.dataOrg, r.tagOrg);
    ASSERT_TRUE(re.valid);
    EXPECT_DOUBLE_EQ(re.cycleNs, r.cycleNs);
}

TEST_P(TimingSweep, SubarrayDimsConserveBits)
{
    if (!valid())
        GTEST_SKIP();
    TimingResult r = model().optimize(geom(size(), assoc()));
    std::uint64_t data_bits = static_cast<std::uint64_t>(r.dataDims.rows) *
        r.dataDims.cols * r.dataOrg.numSubarrays();
    EXPECT_EQ(data_bits, 8 * size());
}

TEST_P(TimingSweep, MoreAssociativeIsNeverFaster)
{
    if (!valid())
        GTEST_SKIP();
    if (assoc() == 1)
        GTEST_SKIP();
    double sa = model().optimize(geom(size(), assoc())).accessNs;
    double dm = model().optimize(geom(size(), 1)).accessNs;
    EXPECT_GE(sa + 1e-9, dm);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, TimingSweep,
    ::testing::Combine(::testing::Values(1_KiB, 2_KiB, 4_KiB, 8_KiB,
                                         16_KiB, 32_KiB, 64_KiB,
                                         128_KiB, 256_KiB),
                       ::testing::Values(1, 2, 4, 8)),
    [](const auto &info) {
        return std::to_string(std::get<0>(info.param) / 1024) + "K_w" +
               std::to_string(std::get<1>(info.param));
    });
