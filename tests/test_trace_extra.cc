/**
 * @file
 * Tests for the compressed trace format and trace interleaving.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "cache/single_level.hh"
#include "trace/interleave.hh"
#include "trace/io.hh"
#include "trace/workload.hh"

using namespace tlc;

namespace {

TraceBuffer
sampleTrace()
{
    TraceBuffer b;
    b.append(0x00400000, RefType::Instr);
    b.append(0x00400004, RefType::Instr);
    b.append(0x10000020, RefType::Load);
    b.append(0x10000028, RefType::Load);
    b.append(0x0fffffff, RefType::Store);
    b.append(0xffffffff, RefType::Store); // big positive delta
    b.append(0x00000000, RefType::Store); // big negative delta
    return b;
}

} // namespace

TEST(CompressedTrace, RoundTrip)
{
    TraceBuffer orig = sampleTrace();
    std::stringstream ss;
    writeCompressedTrace(ss, orig);
    TraceBuffer copy;
    ASSERT_TRUE(readCompressedTrace(ss, copy));
    ASSERT_EQ(copy.size(), orig.size());
    for (std::size_t i = 0; i < orig.size(); ++i)
        EXPECT_EQ(copy[i], orig[i]) << i;
}

TEST(CompressedTrace, RoundTripRealWorkload)
{
    TraceBuffer orig = Workloads::generate(Benchmark::Gcc1, 100000);
    std::stringstream ss;
    writeCompressedTrace(ss, orig);
    TraceBuffer copy;
    ASSERT_TRUE(readCompressedTrace(ss, copy));
    ASSERT_EQ(copy.size(), orig.size());
    for (std::size_t i = 0; i < orig.size(); ++i)
        ASSERT_EQ(copy[i], orig[i]) << i;
}

TEST(CompressedTrace, CompressesRealTracesWell)
{
    TraceBuffer t = Workloads::generate(Benchmark::Espresso, 100000);
    std::stringstream raw, compressed;
    writeBinaryTrace(raw, t);
    writeCompressedTrace(compressed, t);
    double ratio = static_cast<double>(raw.str().size()) /
                   static_cast<double>(compressed.str().size());
    // Sequential ifetch dominates: expect at least 2.5x.
    EXPECT_GT(ratio, 2.5);
}

TEST(CompressedTrace, RejectsTruncation)
{
    TraceBuffer t = sampleTrace();
    std::stringstream ss;
    writeCompressedTrace(ss, t);
    std::string bytes = ss.str();
    bytes.resize(bytes.size() - 1);
    std::stringstream cut(bytes);
    TraceBuffer b;
    EXPECT_FALSE(readCompressedTrace(cut, b));
}

TEST(CompressedTrace, RawReaderRejectsCompressed)
{
    TraceBuffer t = sampleTrace();
    std::stringstream ss;
    writeCompressedTrace(ss, t);
    TraceBuffer b;
    EXPECT_FALSE(readBinaryTrace(ss, b));
}

TEST(CompressedTrace, LoadTraceFileSniffsVersion)
{
    TraceBuffer orig = sampleTrace();
    std::string dir = ::testing::TempDir();
    std::string p1 = dir + "/tlc_c.trc", p2 = dir + "/tlc_r.trc";
    ASSERT_TRUE(saveTraceFile(p1, orig, /*compressed=*/true));
    ASSERT_TRUE(saveTraceFile(p2, orig, /*compressed=*/false));
    TraceBuffer a, b;
    ASSERT_TRUE(loadTraceFile(p1, a));
    ASSERT_TRUE(loadTraceFile(p2, b));
    EXPECT_EQ(a.size(), orig.size());
    EXPECT_EQ(b.size(), orig.size());
    std::remove(p1.c_str());
    std::remove(p2.c_str());
}

// --- interleaving ----------------------------------------------------

TEST(Interleave, RoundRobinQuanta)
{
    TraceBuffer a, b;
    for (int i = 0; i < 10; ++i)
        a.append(0x100 + i, RefType::Instr);
    for (int i = 0; i < 10; ++i)
        b.append(0x200 + i, RefType::Load);
    TraceBuffer out = interleaveTraces({&a, &b}, 3, 12);
    ASSERT_EQ(out.size(), 12u);
    // First quantum: process 0, instrs; second: process 1, loads.
    EXPECT_EQ(out[0].type, RefType::Instr);
    EXPECT_EQ(out[2].type, RefType::Instr);
    EXPECT_EQ(out[3].type, RefType::Load);
    EXPECT_EQ(out[5].type, RefType::Load);
    EXPECT_EQ(out[6].type, RefType::Instr);
}

TEST(Interleave, AddressSpacesDisjoint)
{
    TraceBuffer a, b;
    a.append(0x1234, RefType::Load);
    b.append(0x1234, RefType::Load);
    TraceBuffer out = interleaveTraces({&a, &b}, 1, 2);
    EXPECT_EQ(out[0].addr, 0x1234u);
    EXPECT_EQ(out[1].addr, 0x1234u | (1u << 30));
}

TEST(Interleave, WrapsShortTraces)
{
    TraceBuffer a;
    a.append(0x10, RefType::Instr);
    a.append(0x20, RefType::Instr);
    TraceBuffer out = interleaveTraces({&a}, 5, 7);
    ASSERT_EQ(out.size(), 7u);
    EXPECT_EQ(out[0].addr, 0x10u);
    EXPECT_EQ(out[2].addr, 0x10u);
    EXPECT_EQ(out[6].addr, 0x10u);
}

TEST(Interleave, ContextSwitchesInflateMissRate)
{
    // The Mogul/Borg effect: frequent switches between two processes
    // sharing a cache cost misses vs. running each alone.
    TraceBuffer g = Workloads::generate(Benchmark::Gcc1, 100000);
    TraceBuffer e = Workloads::generate(Benchmark::Espresso, 100000);

    CacheParams l1;
    l1.sizeBytes = 8 * 1024;
    l1.lineBytes = 16;
    l1.assoc = 1;

    auto miss = [&](const TraceBuffer &t) {
        SingleLevelHierarchy h(l1);
        h.simulate(t, t.size() / 10);
        return h.stats().l1MissRate();
    };
    double solo = (miss(g) + miss(e)) / 2.0;
    double fast_switch =
        miss(interleaveTraces({&g, &e}, 1000, 200000));
    double slow_switch =
        miss(interleaveTraces({&g, &e}, 50000, 200000));
    EXPECT_GT(fast_switch, slow_switch);
    EXPECT_GT(fast_switch, solo);
}
