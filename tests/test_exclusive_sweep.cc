/**
 * @file
 * Parameterized property sweep for two-level exclusive caching:
 * the §8 invariants must hold over the whole geometry grid, under
 * realistic mixed instruction/data traffic, not just in the
 * hand-picked didactic cases.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "cache/two_level.hh"
#include "trace/workload.hh"

using namespace tlc;

namespace {

CacheParams
params(std::uint64_t size, std::uint32_t assoc)
{
    CacheParams p;
    p.sizeBytes = size;
    p.lineBytes = 16;
    p.assoc = assoc;
    p.repl = ReplPolicy::Random;
    return p;
}

const TraceBuffer &
sharedTrace()
{
    static const TraceBuffer t =
        Workloads::generate(Benchmark::Gcc1, 120000);
    return t;
}

} // namespace

class ExclusiveSweep
    : public ::testing::TestWithParam<
          std::tuple<std::uint64_t, std::uint64_t, std::uint32_t>>
{
  protected:
    std::uint64_t l1() const { return std::get<0>(GetParam()); }
    std::uint64_t l2() const { return std::get<1>(GetParam()); }
    std::uint32_t assoc() const { return std::get<2>(GetParam()); }

    bool valid() const
    {
        // L2 must be larger than one L1 and hold at least one set.
        return l2() >= 2 * l1() && l2() / 16 >= assoc();
    }
};

TEST_P(ExclusiveSweep, CountsPartitionAndSwapsBounded)
{
    if (!valid())
        GTEST_SKIP();
    TwoLevelHierarchy h(params(l1(), 1), params(l2(), assoc()),
                        TwoLevelPolicy::Exclusive);
    h.simulate(sharedTrace(), 12000);
    const HierarchyStats &s = h.stats();
    EXPECT_EQ(s.l2Hits + s.l2Misses, s.l1Misses());
    EXPECT_LE(s.swaps, s.l2Hits);
    EXPECT_GT(s.totalRefs(), 0u);
}

TEST_P(ExclusiveSweep, NeverMoreOffchipThanInclusive)
{
    if (!valid())
        GTEST_SKIP();
    auto run = [&](TwoLevelPolicy pol) {
        TwoLevelHierarchy h(params(l1(), 1), params(l2(), assoc()), pol);
        h.simulate(sharedTrace(), 12000);
        return h.stats().l2Misses;
    };
    std::uint64_t exc = run(TwoLevelPolicy::Exclusive);
    std::uint64_t inc = run(TwoLevelPolicy::Inclusive);
    // Allow a 2% statistical wobble from random replacement; the
    // systematic direction must favour exclusion.
    EXPECT_LE(exc, inc + inc / 50) << l1() << ":" << l2();
}

TEST_P(ExclusiveSweep, ReferencedLineEndsUpInL1)
{
    if (!valid())
        GTEST_SKIP();
    TwoLevelHierarchy h(params(l1(), 1), params(l2(), assoc()),
                        TwoLevelPolicy::Exclusive);
    const auto &recs = sharedTrace().records();
    for (std::size_t i = 0; i < 20000; ++i) {
        h.access(recs[i]);
        if (i % 97 == 0) {
            const Cache &c = recs[i].type == RefType::Instr
                                 ? h.icache()
                                 : h.dcache();
            ASSERT_TRUE(c.contains(recs[i].addr));
        }
    }
}

TEST_P(ExclusiveSweep, OnchipLineCountNeverExceedsCapacity)
{
    if (!valid())
        GTEST_SKIP();
    TwoLevelHierarchy h(params(l1(), 1), params(l2(), assoc()),
                        TwoLevelPolicy::Exclusive);
    const auto &recs = sharedTrace().records();
    std::uint64_t cap =
        2 * (l1() / 16) + l2() / 16; // the paper's 2x + y bound
    for (std::size_t i = 0; i < 20000; ++i) {
        h.access(recs[i]);
        if (i % 499 == 0) {
            std::uint64_t resident = h.icache().residentLines() +
                                     h.dcache().residentLines() +
                                     h.l2cache().residentLines();
            ASSERT_LE(resident, cap);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, ExclusiveSweep,
    ::testing::Combine(::testing::Values(1024, 4096, 16384),
                       ::testing::Values(2048, 8192, 32768, 131072),
                       ::testing::Values(1, 2, 4)),
    [](const auto &info) {
        return "l1_" + std::to_string(std::get<0>(info.param)) +
               "_l2_" + std::to_string(std::get<1>(info.param)) +
               "_w" + std::to_string(std::get<2>(info.param));
    });
