/**
 * @file
 * Boundary-validation tests for the trace readers: a table-driven
 * corpus of corrupt inputs for all three formats (bad magic, wrong
 * version, truncated/oversized counts, mid-record EOF, invalid
 * reference types, overlong varints) plus randomized round-trip
 * property tests. Every failure must come back as a typed Status
 * with the destination buffer rolled back to its entry size.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "trace/buffer.hh"
#include "trace/io.hh"
#include "util/random.hh"

using namespace tlc;

namespace {

void
putU32le(std::string &s, std::uint32_t v)
{
    s.push_back(static_cast<char>(v & 0xff));
    s.push_back(static_cast<char>((v >> 8) & 0xff));
    s.push_back(static_cast<char>((v >> 16) & 0xff));
    s.push_back(static_cast<char>((v >> 24) & 0xff));
}

void
putU64le(std::string &s, std::uint64_t v)
{
    putU32le(s, static_cast<std::uint32_t>(v & 0xffffffffu));
    putU32le(s, static_cast<std::uint32_t>(v >> 32));
}

/** Header (magic + version + count) of a binary trace image. */
std::string
header(std::uint32_t version, std::uint64_t count)
{
    std::string s = "TLCT";
    putU32le(s, version);
    putU64le(s, count);
    return s;
}

TraceBuffer
sampleTrace()
{
    TraceBuffer b;
    b.append(0x00400000, RefType::Instr);
    b.append(0x10000020, RefType::Load);
    b.append(0x10000040, RefType::Store);
    b.append(0x00400004, RefType::Instr);
    return b;
}

std::string
serializeRaw(const TraceBuffer &b)
{
    std::ostringstream os;
    writeBinaryTrace(os, b);
    return os.str();
}

std::string
serializeCompressed(const TraceBuffer &b)
{
    std::ostringstream os;
    writeCompressedTrace(os, b);
    return os.str();
}

enum class Reader { Raw, Compressed, Text };

Status
readWith(Reader r, const std::string &bytes, TraceBuffer &buf)
{
    std::istringstream is(bytes);
    switch (r) {
      case Reader::Raw:
        return readBinaryTrace(is, buf);
      case Reader::Compressed:
        return readCompressedTrace(is, buf);
      case Reader::Text:
        return readTextTrace(is, buf);
    }
    return Status(StatusCode::InternalError, "unreachable");
}

struct CorruptCase
{
    const char *name;
    Reader reader;
    std::string bytes;
    StatusCode want;
};

/** The corrupt-input corpus of the ISSUE's test checklist. */
std::vector<CorruptCase>
corpus()
{
    std::vector<CorruptCase> cases;
    const std::string raw = serializeRaw(sampleTrace());
    const std::string comp = serializeCompressed(sampleTrace());

    // --- raw binary ---------------------------------------------------
    {
        std::string s = raw;
        s[0] = 'X';
        cases.push_back({"raw bad magic", Reader::Raw, s,
                         StatusCode::BadMagic});
    }
    cases.push_back({"raw wrong version", Reader::Raw,
                     header(7, 0), StatusCode::VersionMismatch});
    cases.push_back({"raw compressed version", Reader::Raw,
                     comp, StatusCode::VersionMismatch});
    cases.push_back({"raw empty stream", Reader::Raw, "",
                     StatusCode::Truncated});
    cases.push_back({"raw magic only", Reader::Raw, "TLCT",
                     StatusCode::Truncated});
    cases.push_back({"raw truncated count", Reader::Raw,
                     raw.substr(0, 11), StatusCode::Truncated});
    cases.push_back({"raw mid-record EOF", Reader::Raw,
                     raw.substr(0, raw.size() - 3),
                     StatusCode::Truncated});
    cases.push_back({"raw count beyond EOF", Reader::Raw,
                     header(1, 1000), StatusCode::CountTooLarge});
    // A 5-byte-header-equivalent: tiny file, multi-GB reservation ask.
    cases.push_back({"raw OOM-sized count", Reader::Raw,
                     header(1, 0x2000000000000000ULL),
                     StatusCode::CountTooLarge});
    {
        std::string s = raw;
        s[16 + 4] = 7; // first record's type byte
        cases.push_back({"raw invalid ref type", Reader::Raw, s,
                         StatusCode::TypeOutOfRange});
    }

    // --- compressed ---------------------------------------------------
    {
        std::string s = comp;
        s[1] = 'X';
        cases.push_back({"compressed bad magic", Reader::Compressed, s,
                         StatusCode::BadMagic});
    }
    cases.push_back({"compressed raw version", Reader::Compressed, raw,
                     StatusCode::VersionMismatch});
    cases.push_back({"compressed truncated header", Reader::Compressed,
                     comp.substr(0, 9), StatusCode::Truncated});
    cases.push_back({"compressed mid-varint EOF", Reader::Compressed,
                     header(2, 1) + "\x80", StatusCode::Truncated});
    cases.push_back({"compressed count beyond EOF", Reader::Compressed,
                     header(2, 50) + "\x04\x04",
                     StatusCode::CountTooLarge});
    cases.push_back({"compressed OOM-sized count", Reader::Compressed,
                     header(2, ~0ULL >> 2), StatusCode::CountTooLarge});
    {
        // type bits = 3 (word = 0x03).
        cases.push_back({"compressed invalid ref type",
                         Reader::Compressed, header(2, 1) + "\x03",
                         StatusCode::TypeOutOfRange});
    }
    {
        // Eleven continuation bytes: varint never ends.
        std::string s = header(2, 1);
        s.append(11, '\x80');
        s.push_back('\x00');
        cases.push_back({"compressed >10-byte varint",
                         Reader::Compressed, s,
                         StatusCode::OverlongVarint});
    }
    // --- compressed, version 3 (mandatory CRC footer) -----------------
    {
        std::string s = comp;
        s.resize(s.size() - 4); // records intact, footer gone
        cases.push_back({"compressed missing CRC footer",
                         Reader::Compressed, s, StatusCode::Truncated});
    }
    {
        std::string s = comp;
        s.resize(s.size() - 2); // footer cut mid-word
        cases.push_back({"compressed cut CRC footer",
                         Reader::Compressed, s, StatusCode::Truncated});
    }
    {
        std::string s = comp;
        s[s.size() - 1] ^= 0x01; // footer disagrees with the records
        cases.push_back({"compressed bad CRC footer",
                         Reader::Compressed, s,
                         StatusCode::ChecksumMismatch});
    }
    {
        // A payload bit flip that still decodes structurally (the
        // varint frame survives; the address and type change) — only
        // the footer can catch this one.
        std::string s = comp;
        s[16] ^= 0x01;
        cases.push_back({"compressed payload bit flip",
                         Reader::Compressed, s,
                         StatusCode::ChecksumMismatch});
    }
    {
        // Ten bytes but bits beyond 64 set in the last one.
        std::string s = header(2, 1);
        s.append(9, '\x80');
        s.push_back('\x7f');
        cases.push_back({"compressed varint overflows u64",
                         Reader::Compressed, s,
                         StatusCode::OverlongVarint});
    }

    // --- text ---------------------------------------------------------
    cases.push_back({"text unknown type", Reader::Text,
                     "i 0x100\nz 0x200\n", StatusCode::ParseError});
    cases.push_back({"text bad address", Reader::Text,
                     "i 0x100\nl zork\n", StatusCode::ParseError});
    cases.push_back({"text missing address", Reader::Text,
                     "i 0x100\nl\n", StatusCode::ParseError});
    cases.push_back({"text trailing junk in address", Reader::Text,
                     "s 0x10q\n", StatusCode::ParseError});

    return cases;
}

} // namespace

TEST(TraceCorpus, EveryCorruptInputRejectedWithTypedStatus)
{
    for (const CorruptCase &c : corpus()) {
        TraceBuffer buf;
        Status s = readWith(c.reader, c.bytes, buf);
        EXPECT_FALSE(s.ok()) << c.name;
        EXPECT_EQ(s.code(), c.want)
            << c.name << ": got " << s.toString();
        EXPECT_FALSE(s.message().empty()) << c.name;
    }
}

TEST(TraceCorpus, FailedReadsRollTheBufferBack)
{
    for (const CorruptCase &c : corpus()) {
        // Pre-seed so rollback-to-zero is distinguishable from
        // rollback-to-entry.
        TraceBuffer buf;
        buf.append(0x1000, RefType::Instr);
        buf.append(0x2000, RefType::Store);
        Status s = readWith(c.reader, c.bytes, buf);
        ASSERT_FALSE(s.ok()) << c.name;
        EXPECT_EQ(buf.size(), 2u) << c.name;
        EXPECT_EQ(buf.instrRefs(), 1u) << c.name;
        EXPECT_EQ(buf.storeRefs(), 1u) << c.name;
        EXPECT_EQ(buf[0].addr, 0x1000u) << c.name;
        EXPECT_EQ(buf[1].addr, 0x2000u) << c.name;
    }
}

TEST(TraceCorpus, LoadTraceFileNamesPathAndStage)
{
    std::string dir = ::testing::TempDir();
    for (const CorruptCase &c : corpus()) {
        // loadTraceFile sniffs the format itself, so readers
        // disagree with it about images that carry the *other*
        // binary version; skip those cross-version cases. An empty
        // file sniffs as a (valid, empty) text trace, so skip it
        // here too.
        if (std::string(c.name).find("version") != std::string::npos ||
            c.bytes.empty()) {
            continue;
        }
        std::string path = dir + "/tlc_corrupt_case.trc";
        {
            std::ofstream os(path, std::ios::binary);
            os.write(c.bytes.data(),
                     static_cast<std::streamsize>(c.bytes.size()));
        }
        TraceBuffer buf;
        buf.append(0x1000, RefType::Load);
        Status s = loadTraceFile(path, buf);
        EXPECT_FALSE(s.ok()) << c.name;
        // The status message must say which file failed.
        EXPECT_NE(s.message().find(path), std::string::npos)
            << c.name << ": " << s.message();
        EXPECT_EQ(buf.size(), 1u) << c.name;
        std::remove(path.c_str());
    }
}

TEST(TraceCorpus, LoadTraceFileReportsUnknownBinaryVersion)
{
    std::string path = ::testing::TempDir() + "/tlc_bad_version.trc";
    {
        std::ofstream os(path, std::ios::binary);
        std::string img = header(9, 0);
        os.write(img.data(), static_cast<std::streamsize>(img.size()));
    }
    TraceBuffer buf;
    Status s = loadTraceFile(path, buf);
    EXPECT_EQ(s.code(), StatusCode::VersionMismatch);
    EXPECT_NE(s.message().find("version 9"), std::string::npos)
        << s.message();
    std::remove(path.c_str());
}

TEST(TraceCorpus, LoadTraceFileReportsHeaderOnlyFile)
{
    // Magic present but the version field is cut short: the
    // sniffing stage itself must report truncation (this is the
    // ignored-getU32 regression case).
    std::string path = ::testing::TempDir() + "/tlc_short_header.trc";
    {
        std::ofstream os(path, std::ios::binary);
        os.write("TLCTv", 5);
    }
    TraceBuffer buf;
    Status s = loadTraceFile(path, buf);
    EXPECT_EQ(s.code(), StatusCode::Truncated);
    EXPECT_NE(s.message().find(path), std::string::npos) << s.message();
    EXPECT_TRUE(buf.empty());
    std::remove(path.c_str());
}

TEST(TraceCorpus, OomSizedCountDoesNotReserve)
{
    // A 16-byte header claiming 2^61 records must be rejected
    // before any allocation is attempted. (Run under ASan this
    // also proves no huge transient reservation happens.)
    TraceBuffer buf;
    Status s = readWith(Reader::Raw, header(1, 1ULL << 61), buf);
    EXPECT_EQ(s.code(), StatusCode::CountTooLarge);
    EXPECT_TRUE(buf.empty());
    EXPECT_EQ(buf.records().capacity(), 0u);

    s = readWith(Reader::Compressed, header(2, 1ULL << 61), buf);
    EXPECT_EQ(s.code(), StatusCode::CountTooLarge);
    EXPECT_EQ(buf.records().capacity(), 0u);
}

TEST(TraceCrcFooter, WriterEmitsVersion3)
{
    std::string comp = serializeCompressed(sampleTrace());
    ASSERT_GE(comp.size(), 16u + 4u);
    EXPECT_EQ(comp.substr(0, 4), "TLCT");
    EXPECT_EQ(static_cast<unsigned char>(comp[4]),
              kTraceVersionCompressedCrc);

    TraceBuffer buf;
    ASSERT_TRUE(readWith(Reader::Compressed, comp, buf).ok());
    ASSERT_EQ(buf.size(), 4u);
    EXPECT_EQ(buf[1].addr, 0x10000020u);
}

TEST(TraceCrcFooter, LegacyVersion2StillLoads)
{
    // A version-2 image is the version-3 image with the old version
    // number and no footer — the record encoding never changed.
    std::string comp = serializeCompressed(sampleTrace());
    std::string legacy = header(2, sampleTrace().size()) +
        comp.substr(16, comp.size() - 16 - 4);

    TraceBuffer buf;
    ASSERT_TRUE(readWith(Reader::Compressed, legacy, buf).ok());
    ASSERT_EQ(buf.size(), 4u);
    EXPECT_EQ(buf[0].addr, 0x00400000u);
    EXPECT_EQ(buf[3].addr, 0x00400004u);

    // And through the sniffing file loader too.
    std::string path = ::testing::TempDir() + "/tlc_legacy_v2.trc";
    {
        std::ofstream os(path, std::ios::binary);
        os.write(legacy.data(),
                 static_cast<std::streamsize>(legacy.size()));
    }
    TraceBuffer fromFile;
    EXPECT_TRUE(loadTraceFile(path, fromFile).ok());
    EXPECT_EQ(fromFile.size(), 4u);
    std::remove(path.c_str());
}

TEST(TraceCrcFooter, ZeroRecordFileRoundTripsAndGuardsItsFooter)
{
    TraceBuffer empty;
    std::string img = serializeCompressed(empty);
    // Header + footer and nothing else.
    EXPECT_EQ(img.size(), 16u + 4u);

    TraceBuffer buf;
    EXPECT_TRUE(readWith(Reader::Compressed, img, buf).ok());
    EXPECT_TRUE(buf.empty());

    // Even with zero records the footer is owed: cutting it is
    // truncation, corrupting it is a checksum mismatch.
    TraceBuffer scratch;
    Status s = readWith(Reader::Compressed, img.substr(0, 17), scratch);
    EXPECT_EQ(s.code(), StatusCode::Truncated);
    std::string bad = img;
    bad[18] ^= 0x20;
    s = readWith(Reader::Compressed, bad, scratch);
    EXPECT_EQ(s.code(), StatusCode::ChecksumMismatch);
    EXPECT_TRUE(scratch.empty());
}

// ---------------------------------------------------------------------
// Round-trip property tests with random buffers.
// ---------------------------------------------------------------------

namespace {

TraceBuffer
randomTrace(Pcg32 &rng, std::size_t max_records)
{
    TraceBuffer b;
    std::size_t n = rng.nextBounded(
        static_cast<std::uint32_t>(max_records) + 1);
    for (std::size_t i = 0; i < n; ++i) {
        // Mix full-range addresses with clustered ones so the
        // compressed deltas cover tiny and huge magnitudes.
        std::uint32_t addr = (rng.nextDouble() < 0.5)
            ? rng.next()
            : 0x00400000u + rng.nextBounded(4096);
        b.append(addr, static_cast<RefType>(rng.nextBounded(3)));
    }
    return b;
}

void
expectEqual(const TraceBuffer &a, const TraceBuffer &b,
            const char *what, unsigned round)
{
    ASSERT_EQ(a.size(), b.size()) << what << " round " << round;
    for (std::size_t i = 0; i < a.size(); ++i)
        ASSERT_EQ(a[i], b[i]) << what << " round " << round
                              << " record " << i;
    EXPECT_EQ(a.instrRefs(), b.instrRefs());
    EXPECT_EQ(a.loadRefs(), b.loadRefs());
    EXPECT_EQ(a.storeRefs(), b.storeRefs());
}

} // namespace

TEST(TraceRoundTripProperty, RandomBuffersSurviveAllThreeFormats)
{
    Pcg32 rng(0xfeedface, 0x42);
    for (unsigned round = 0; round < 50; ++round) {
        TraceBuffer orig = randomTrace(rng, 300);

        TraceBuffer raw;
        ASSERT_TRUE(readWith(Reader::Raw, serializeRaw(orig), raw));
        expectEqual(orig, raw, "raw", round);

        TraceBuffer comp;
        ASSERT_TRUE(readWith(Reader::Compressed,
                             serializeCompressed(orig), comp));
        expectEqual(orig, comp, "compressed", round);

        std::ostringstream text;
        writeTextTrace(text, orig);
        TraceBuffer txt;
        ASSERT_TRUE(readWith(Reader::Text, text.str(), txt));
        expectEqual(orig, txt, "text", round);
    }
}

TEST(TraceRoundTripProperty, AppendSemanticsPreserved)
{
    // A successful read appends to existing contents.
    TraceBuffer orig = sampleTrace();
    TraceBuffer buf;
    buf.append(0x42, RefType::Load);
    ASSERT_TRUE(readWith(Reader::Raw, serializeRaw(orig), buf));
    ASSERT_EQ(buf.size(), orig.size() + 1);
    EXPECT_EQ(buf[0].addr, 0x42u);
    EXPECT_EQ(buf[1], orig[0]);
}

TEST(TraceBufferTruncate, RestoresCountsExactly)
{
    TraceBuffer b;
    b.append(0x10, RefType::Instr);
    b.append(0x20, RefType::Load);
    b.append(0x30, RefType::Store);
    b.append(0x40, RefType::Store);
    b.truncate(4); // no-op
    EXPECT_EQ(b.size(), 4u);
    b.truncate(1);
    EXPECT_EQ(b.size(), 1u);
    EXPECT_EQ(b.instrRefs(), 1u);
    EXPECT_EQ(b.loadRefs(), 0u);
    EXPECT_EQ(b.storeRefs(), 0u);
    b.truncate(0);
    EXPECT_TRUE(b.empty());
    EXPECT_EQ(b.totalRefs(), 0u);
}
