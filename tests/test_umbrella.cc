/**
 * @file
 * Compilation test for the umbrella header: it must pull in the
 * whole public API, and the pieces must compose.
 */

#include <gtest/gtest.h>

#include "tlc.hh"

using namespace tlc;

TEST(Umbrella, EndToEndThroughUmbrellaHeader)
{
    MissRateEvaluator ev(30000);
    Explorer ex(ev);
    SystemConfig c;
    c.l1Bytes = 4_KiB;
    c.l2Bytes = 32_KiB;
    c.assume.policy = TwoLevelPolicy::Exclusive;
    DesignPoint p = ex.evaluate(Benchmark::Espresso, c);
    EXPECT_GT(p.tpi.tpi, 0.0);
    EXPECT_GT(p.areaRbe, 0.0);
}

TEST(Umbrella, AllModuleTypesVisible)
{
    // One object per module proves the includes are complete.
    Pcg32 rng(1);
    TraceBuffer buf;
    CacheParams cp;
    cp.sizeBytes = 1_KiB;
    Cache cache(cp);
    AccessTimeModel timing;
    AreaModel area;
    EnergyModel energy;
    TlbParams tlb_params;
    Tlb tlb(tlb_params);
    PipelineParams pp;
    PipelineSimulator pipe(pp);
    ScatterPlot plot;
    Envelope env = Envelope::of({});
    (void)rng;
    (void)env;
    SUCCEED();
}
