/**
 * @file
 * Tests for the structured error layer (tlc::Status, tlc::Expected).
 */

#include <gtest/gtest.h>

#include "util/status.hh"

using namespace tlc;

TEST(Status, DefaultIsOk)
{
    Status s;
    EXPECT_TRUE(s.ok());
    EXPECT_TRUE(static_cast<bool>(s));
    EXPECT_EQ(s.code(), StatusCode::Ok);
    EXPECT_EQ(s.toString(), "ok");
}

TEST(Status, FailureCarriesCodeAndMessage)
{
    Status s(StatusCode::Truncated, "stream ends inside record 3");
    EXPECT_FALSE(s.ok());
    EXPECT_FALSE(static_cast<bool>(s));
    EXPECT_EQ(s.code(), StatusCode::Truncated);
    EXPECT_EQ(s.message(), "stream ends inside record 3");
    EXPECT_EQ(s.toString(), "truncated: stream ends inside record 3");
}

TEST(Status, StatusfFormats)
{
    Status s = statusf(StatusCode::CountTooLarge,
                       "count %llu exceeds %llu bytes",
                       123456789ULL, 42ULL);
    EXPECT_EQ(s.code(), StatusCode::CountTooLarge);
    EXPECT_EQ(s.message(), "count 123456789 exceeds 42 bytes");
}

TEST(Status, StatusfLongMessageIsNotTruncated)
{
    std::string big(500, 'x');
    Status s = statusf(StatusCode::ParseError, "<%s>", big.c_str());
    EXPECT_EQ(s.message().size(), big.size() + 2);
}

TEST(Status, WithContextPrefixes)
{
    Status s(StatusCode::BadMagic, "magic bytes wrong");
    Status c = s.withContext("'gcc1.trc'");
    EXPECT_EQ(c.code(), StatusCode::BadMagic);
    EXPECT_EQ(c.message(), "'gcc1.trc': magic bytes wrong");
    // withContext on success is a no-op.
    EXPECT_TRUE(Status().withContext("x").ok());
}

TEST(Status, CodeNamesAreStable)
{
    EXPECT_STREQ(statusCodeName(StatusCode::Ok), "ok");
    EXPECT_STREQ(statusCodeName(StatusCode::BadMagic), "bad-magic");
    EXPECT_STREQ(statusCodeName(StatusCode::VersionMismatch),
                 "version-mismatch");
    EXPECT_STREQ(statusCodeName(StatusCode::Truncated), "truncated");
    EXPECT_STREQ(statusCodeName(StatusCode::OverlongVarint),
                 "overlong-varint");
    EXPECT_STREQ(statusCodeName(StatusCode::TypeOutOfRange),
                 "type-out-of-range");
    EXPECT_STREQ(statusCodeName(StatusCode::CountTooLarge),
                 "count-too-large");
    EXPECT_STREQ(statusCodeName(StatusCode::InvalidConfig),
                 "invalid-config");
}

TEST(Expected, HoldsValue)
{
    Expected<int> e(42);
    ASSERT_TRUE(e.ok());
    EXPECT_EQ(e.value(), 42);
    EXPECT_EQ(e.valueOr(7), 42);
    EXPECT_TRUE(e.status().ok());
}

TEST(Expected, HoldsStatus)
{
    Expected<int> e(statusf(StatusCode::UnknownName, "no such thing"));
    EXPECT_FALSE(e.ok());
    EXPECT_EQ(e.status().code(), StatusCode::UnknownName);
    EXPECT_EQ(e.valueOr(7), 7);
}

TEST(Expected, ImplicitConversionFromValueAndStatus)
{
    auto f = [](bool fail) -> Expected<std::string> {
        if (fail)
            return statusf(StatusCode::IoError, "boom");
        return std::string("hello");
    };
    EXPECT_TRUE(f(false).ok());
    EXPECT_EQ(f(false).value(), "hello");
    EXPECT_FALSE(f(true).ok());
}

TEST(Expected, ValueOnErrorDies)
{
    Expected<int> e(statusf(StatusCode::IoError, "boom"));
    EXPECT_DEATH((void)e.value(), "boom");
}
