/**
 * @file
 * Figures 17-20: long off-chip miss service (200 ns, no board-level
 * cache), 4-way L2. The paper's findings: TPI rises ~3x for small
 * on-chip caches, far less for large hierarchies, and the
 * two-level-vs-one-level gap widens for every workload.
 */

#include <iostream>

#include "bench_common.hh"
#include "util/units.hh"

using namespace tlc;

int
main(int argc, char **argv)
{
    bench::parseDriverArgs(argc, argv); // --threads=N
    MissRateEvaluator ev;
    Explorer ex(ev);

    SystemAssumptions a200;
    a200.offchipNs = 200;
    a200.l2Assoc = 4;
    a200.policy = TwoLevelPolicy::Inclusive;
    SystemAssumptions a50 = a200;
    a50.offchipNs = 50;

    bench::banner("Figure 17: gcc1, 200ns off-chip, L2 4-way "
                  "(all configurations)");
    auto gcc_points = ex.sweep(Benchmark::Gcc1, a200);
    bench::printPoints("gcc1-200ns", gcc_points);
    std::printf("\nbest 2-level envelope:\n");
    Envelope gcc_best = Explorer::envelopeOf(gcc_points);
    bench::printEnvelope("gcc1-200ns", gcc_best);
    std::printf("\n");
    bench::plotEnvelopes(
        "Figure 17: gcc1 @ 200ns",
        {{"1-level only",
          Explorer::envelopeOf(ex.sweep(Benchmark::Gcc1, a200, true,
                                        false))},
         {"best 2-level", gcc_best}});

    bench::banner("Figures 18-20: other workloads, 200ns (envelopes)");
    Table summary({"workload", "gap50_ns", "gap200_ns",
                   "tpi_1K_50ns", "tpi_1K_200ns", "ratio_1K"});
    for (Benchmark b : Workloads::all()) {
        const char *name = Workloads::info(b).name;
        Envelope best200 = Explorer::envelopeOf(ex.sweep(b, a200));
        Envelope single200 =
            Explorer::envelopeOf(ex.sweep(b, a200, true, false));
        Envelope best50 = Explorer::envelopeOf(ex.sweep(b, a50));
        Envelope single50 =
            Explorer::envelopeOf(ex.sweep(b, a50, true, false));

        if (b != Benchmark::Gcc1) {
            std::printf("\n-- %s: best 2-level envelope (200ns) --\n",
                        name);
            bench::printEnvelope(name, best200);
            std::printf("-- %s: 1-level-only staircase (200ns) --\n",
                        name);
            bench::printEnvelope(name, single200);
        }

        // Small-cache pain: 1K:0 TPI at both service times.
        SystemConfig c1k;
        c1k.l1Bytes = 1_KiB;
        c1k.l2Bytes = 0;
        c1k.assume = a50;
        double t50 = ex.evaluate(b, c1k).tpi.tpi;
        c1k.assume = a200;
        double t200 = ex.evaluate(b, c1k).tpi.tpi;

        summary.beginRow();
        summary.cell(name);
        summary.cell(single50.meanGapAgainst(best50), 3);
        summary.cell(single200.meanGapAgainst(best200), 3);
        summary.cell(t50, 2);
        summary.cell(t200, 2);
        summary.cell(t200 / t50, 2);
    }
    std::printf("\nsummary (paper Section 7: every workload's "
                "1-level-vs-2-level gap grows at 200ns; ~3x TPI "
                "penalty at 1KB):\n");
    summary.printAscii(std::cout);
    return 0;
}
