/**
 * @file
 * Before/after timing of the analytic reuse-distance fast path over
 * the paper's full reference sweep: 45 configurations x 7 workloads
 * = 315 design points, priced once with the exact backend (batched
 * simulation) and once with --backend=analytic-prune (one profiling
 * pass per workload ranks the space; only likely-envelope survivors
 * are simulated, one batched pass per workload). Emits JSON — the
 * source of the checked-in BENCH_analytic.json — and fatals if any
 * workload's pruned envelope is not BIT-IDENTICAL to the exact one,
 * so the speedup claim can never drift from the exactness claim.
 *
 * The survivor count has a hard floor: a byte-identical envelope
 * requires exactly simulating every envelope member (59 across the
 * seven workloads at the committed trace length), so the achievable
 * prune rate is bounded by the envelope density, not by the model's
 * accuracy — docs/analytic_model.md works through the bound.
 *
 * Read "speedup" honestly: pruning saves the batched simulator's
 * MARGINAL per-lane cost (~4 ns/ref) on each skipped lane, while a
 * profiling pass costs ~0.3 us/ref, so at 45 lanes per workload the
 * batch engine wins wall-clock even though 72% of points are never
 * simulated. The crossover sits near 100+ saved lanes per workload;
 * the gated claims are the point accounting and the byte-identical
 * envelope, with the speedup ratio tracked one-sidedly so it cannot
 * silently regress further.
 *
 * Usage: bench_analytic_sweep [--refs=N]
 */

#include <chrono>
#include <thread>
#include <vector>

#include "bench_common.hh"
#include "util/metrics.hh"

using namespace tlc;

namespace {

constexpr Benchmark kWorkloads[] = {
    Benchmark::Gcc1, Benchmark::Espresso, Benchmark::Fpppp,
    Benchmark::Doduc, Benchmark::Li, Benchmark::Eqntott,
    Benchmark::Tomcatv,
};

double
seconds(std::chrono::steady_clock::time_point t0,
        std::chrono::steady_clock::time_point t1)
{
    return std::chrono::duration<double>(t1 - t0).count();
}

/** Price the whole reference space under @p backend; one sweep per
 *  workload, points input-ordered. */
std::vector<std::vector<DesignPoint>>
runSweep(MissBackend backend, std::uint64_t refs)
{
    EvaluatorOptions opts;
    opts.traceRefs = refs;
    opts.backend = backend;
    MissRateEvaluator ev(opts);
    Explorer ex(ev);
    SweepRequest req;
    req.configs = DesignSpace::enumerate(SystemAssumptions{});
    req.benchmarks.assign(std::begin(kWorkloads),
                          std::end(kWorkloads));
    std::vector<std::vector<DesignPoint>> out;
    for (auto &sweep : ex.evaluateAll(req))
        out.push_back(std::move(sweep.points));
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args = bench::parseDriverArgs(argc, argv);
    std::uint64_t refs = static_cast<std::uint64_t>(
        args.getInt("refs",
                    static_cast<std::int64_t>(
                        Workloads::defaultTraceLength() / 4)));

    // One worker so the comparison isolates the backend itself from
    // thread-level parallelism (and stays stable on any machine).
    setParallelWorkerCount(1);

    MetricsRegistry &reg = MetricsRegistry::global();
    MetricCounter &profilesCtr =
        reg.counter("explore.analytic.profiles");
    MetricCounter &survivorsCtr =
        reg.counter("explore.analytic.survivors");
    MetricCounter &prunedCtr = reg.counter("explore.analytic.pruned");

    auto t0 = std::chrono::steady_clock::now();
    auto exact = runSweep(MissBackend::Exact, refs);
    auto t1 = std::chrono::steady_clock::now();

    std::uint64_t profiles0 = profilesCtr.value();
    std::uint64_t survivors0 = survivorsCtr.value();
    std::uint64_t pruned0 = prunedCtr.value();
    auto t2 = std::chrono::steady_clock::now();
    auto pruned = runSweep(MissBackend::AnalyticPrune, refs);
    auto t3 = std::chrono::steady_clock::now();
    setParallelWorkerCount(0);

    std::uint64_t profilePasses = profilesCtr.value() - profiles0;
    std::uint64_t exactSimulated = survivorsCtr.value() - survivors0;
    std::uint64_t prunedPoints = prunedCtr.value() - pruned0;

    // Exactness self-check: every workload's pruned envelope must be
    // bit-identical to the exact one — same corner points, same
    // doubles. The speedup only counts if this holds.
    std::size_t designPoints = 0;
    bool identical = true;
    for (std::size_t w = 0; w < exact.size(); ++w) {
        designPoints += exact[w].size();
        Envelope e = Explorer::envelopeOf(exact[w]);
        Envelope p = Explorer::envelopeOf(pruned[w]);
        if (e.points().size() != p.points().size()) {
            identical = false;
        } else {
            for (std::size_t i = 0; i < e.points().size(); ++i) {
                if (e.points()[i].label != p.points()[i].label ||
                    e.points()[i].area != p.points()[i].area ||
                    e.points()[i].tpi != p.points()[i].tpi)
                    identical = false;
            }
        }
        if (!identical) {
            fatal("pruned envelope diverged from exact on %s",
                  Workloads::info(kWorkloads[w]).name);
        }
    }

    double exact_s = seconds(t0, t1);
    double prune_s = seconds(t2, t3);
    std::printf(
        "{\n"
        "  \"benchmark\": \"analytic reuse-distance fast path\",\n"
        "  \"workloads\": %zu,\n"
        "  \"design_points\": %zu,\n"
        "  \"trace_refs\": %llu,\n"
        "  \"hardware_concurrency\": %u,\n"
        "  \"exact_seconds\": %.3f,\n"
        "  \"prune_seconds\": %.3f,\n"
        "  \"speedup\": %.2f,\n"
        "  \"profile_passes\": %llu,\n"
        "  \"sim_batch_passes\": %zu,\n"
        "  \"exact_simulated\": %llu,\n"
        "  \"pruned_points\": %llu,\n"
        "  \"prune_rate\": %.4f,\n"
        "  \"envelopes_identical\": %s\n"
        "}\n",
        std::size(kWorkloads), designPoints,
        static_cast<unsigned long long>(refs),
        std::thread::hardware_concurrency(), exact_s, prune_s,
        exact_s / prune_s,
        static_cast<unsigned long long>(profilePasses),
        std::size(kWorkloads),
        static_cast<unsigned long long>(exactSimulated),
        static_cast<unsigned long long>(prunedPoints),
        static_cast<double>(prunedPoints) /
            static_cast<double>(designPoints),
        identical ? "true" : "false");
    return 0;
}
