/**
 * @file
 * Figures 5-8: baseline two-level caching performance, 50 ns
 * off-chip, 4-way set-associative L2, pseudo-random replacement.
 *
 * For gcc1 (Figure 5) every configuration is printed, as in the
 * paper's scatter; for the other six (Figures 6-8) the best
 * two-level performance envelope and the single-level-only staircase
 * are printed, with the mean envelope gap quantifying the "distance
 * between the solid and dotted lines".
 */

#include <iostream>

#include "bench_common.hh"

using namespace tlc;

int
main(int argc, char **argv)
{
    bench::parseDriverArgs(argc, argv); // --threads=N
    MissRateEvaluator ev;
    Explorer ex(ev);
    SystemAssumptions a;
    a.offchipNs = 50;
    a.l2Assoc = 4;
    a.policy = TwoLevelPolicy::Inclusive;

    bench::banner("Figure 5: gcc1, 50ns off-chip, L2 4-way "
                  "set-associative (all configurations)");
    auto gcc_points = ex.sweep(Benchmark::Gcc1, a);
    bench::printPoints("gcc1", gcc_points);
    std::printf("\nbest 2-level envelope (solid line):\n");
    Envelope gcc_best = Explorer::envelopeOf(gcc_points);
    bench::printEnvelope("gcc1", gcc_best);
    Envelope gcc_single = Explorer::envelopeOf(
        ex.sweep(Benchmark::Gcc1, a, true, false));
    std::printf("\n");
    bench::plotEnvelopes("Figure 5: gcc1 @ 50ns",
                         {{"1-level only", gcc_single},
                          {"best 2-level", gcc_best}});

    bench::banner("Figures 6-8: doduc, espresso, fpppp, li, tomcatv, "
                  "eqntott (envelopes)");
    for (Benchmark b :
         {Benchmark::Doduc, Benchmark::Espresso, Benchmark::Fpppp,
          Benchmark::Li, Benchmark::Tomcatv, Benchmark::Eqntott}) {
        const char *name = Workloads::info(b).name;
        auto all_points = ex.sweep(b, a);
        auto single_points = ex.sweep(b, a, true, false);
        Envelope best = Explorer::envelopeOf(all_points);
        Envelope single = Explorer::envelopeOf(single_points);
        std::printf("\n-- %s: best 2-level envelope --\n", name);
        bench::printEnvelope(name, best);
        std::printf("-- %s: 1-level-only staircase --\n", name);
        bench::printEnvelope(name, single);
        std::printf("%s mean gap (1-level above best): %.3f ns "
                    "(paper Section 4: marginal at 50ns; 1-level "
                    "dominates below ~300k rbe)\n",
                    name, single.meanGapAgainst(best));
    }
    return 0;
}
