/**
 * @file
 * Extension experiment: seed sensitivity of the headline results.
 *
 * Regenerates every workload with three independent random variants
 * (same calibrated structure, different streams) and reports the
 * spread of (a) the 32 KB single-level miss rate and (b) the
 * exclusive-vs-inclusive off-chip-miss gain at 8:32 — demonstrating
 * that the reproduction's conclusions are properties of the workload
 * structure rather than of one lucky seed.
 */

#include <algorithm>
#include <iostream>

#include "bench_common.hh"
#include "cache/single_level.hh"
#include "util/units.hh"

using namespace tlc;

namespace {

constexpr unsigned kVariants = 3;

CacheParams
dm(std::uint64_t size)
{
    CacheParams p;
    p.sizeBytes = size;
    p.lineBytes = 16;
    p.assoc = 1;
    return p;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::parseDriverArgs(argc, argv); // --threads=N
    std::uint64_t refs = Workloads::defaultTraceLength() / 4;

    bench::banner("Seed sensitivity across trace variants "
                  "(3 independent streams per workload)");
    Table t({"workload", "miss32K_min", "miss32K_max", "spread_pct",
             "excl_gain_min_pct", "excl_gain_max_pct",
             "excl_always_wins"});
    for (Benchmark b : Workloads::all()) {
        double miss_lo = 1e9, miss_hi = -1e9;
        double gain_lo = 1e9, gain_hi = -1e9;
        bool always = true;
        for (unsigned v = 0; v < kVariants; ++v) {
            TraceBuffer trace = Workloads::generate(b, refs, v);
            std::uint64_t warm = refs / 10;

            SingleLevelHierarchy s(dm(32_KiB));
            s.simulate(trace, warm);
            double m = s.stats().l1MissRate();
            miss_lo = std::min(miss_lo, m);
            miss_hi = std::max(miss_hi, m);

            auto offchip = [&](TwoLevelPolicy pol) {
                CacheParams l2;
                l2.sizeBytes = 32_KiB;
                l2.lineBytes = 16;
                l2.assoc = 4;
                l2.repl = ReplPolicy::Random;
                TwoLevelHierarchy h(dm(8_KiB), l2, pol);
                h.simulate(trace, warm);
                return static_cast<double>(h.stats().l2Misses);
            };
            double inc = offchip(TwoLevelPolicy::Inclusive);
            double exc = offchip(TwoLevelPolicy::Exclusive);
            double gain = inc > 0 ? 100.0 * (inc - exc) / inc : 0.0;
            gain_lo = std::min(gain_lo, gain);
            gain_hi = std::max(gain_hi, gain);
            always = always && (exc <= inc);
        }
        t.beginRow();
        t.cell(Workloads::info(b).name);
        t.cell(miss_lo, 4);
        t.cell(miss_hi, 4);
        t.cell(miss_lo > 0 ? 100.0 * (miss_hi - miss_lo) / miss_lo
                           : 0.0, 1);
        t.cell(gain_lo, 1);
        t.cell(gain_hi, 1);
        t.cell(always ? "yes" : "NO");
    }
    t.printAscii(std::cout);
    std::printf("\nExpectation: miss-rate spreads of a few percent "
                "relative; the exclusive gain stays positive for "
                "every variant of every workload.\n");
    return 0;
}
