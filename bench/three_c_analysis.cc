/**
 * @file
 * Extension experiment: three-C miss decomposition of the paper's
 * direct-mapped L1 caches.
 *
 * Explains WHY a set-associative L2 (paper §4) and two-level
 * exclusive caching's "limited form of associativity" (§8) help:
 * the conflict component of the direct-mapped L1 misses is exactly
 * what those mechanisms can recover on-chip.
 */

#include <iostream>

#include "bench_common.hh"
#include "cache/three_c.hh"
#include "util/units.hh"

using namespace tlc;

int
main()
{
    bench::banner("3C decomposition of DM L1 data-cache misses "
                  "(compulsory / capacity / conflict)");
    std::uint64_t refs = Workloads::defaultTraceLength() / 4;

    for (std::uint64_t size : {4_KiB, 16_KiB, 64_KiB}) {
        Table t({"workload", "refs", "missrate", "compulsory_pct",
                 "capacity_pct", "conflict_pct"});
        for (Benchmark b : Workloads::all()) {
            TraceBuffer trace = Workloads::generate(b, refs);
            CacheParams p;
            p.sizeBytes = size;
            p.lineBytes = 16;
            p.assoc = 1;
            ThreeCAnalyzer a(p);
            for (const auto &rec : trace) {
                if (rec.type != RefType::Instr)
                    a.access(rec.addr);
            }
            const ThreeCStats &s = a.stats();
            double m = static_cast<double>(s.misses());
            t.beginRow();
            t.cell(Workloads::info(b).name);
            t.cell(s.refs);
            t.cell(s.missRate(), 4);
            t.cell(m ? 100.0 * s.compulsory / m : 0.0, 1);
            t.cell(m ? 100.0 * s.capacity / m : 0.0, 1);
            t.cell(m ? 100.0 * s.conflict / m : 0.0, 1);
        }
        std::printf("\nD-cache size %s:\n", formatSize(size).c_str());
        t.printAscii(std::cout);
    }
    std::printf("\nReading: the conflict share is the headroom that a "
                "set-associative L2 or exclusive swapping can win back "
                "on-chip; the capacity share needs more total "
                "capacity; compulsory misses need longer lines or "
                "prefetch (Jouppi 1990, the paper's reference [4]).\n");
    return 0;
}
