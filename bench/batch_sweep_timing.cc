/**
 * @file
 * Before/after timing of the single-pass multi-configuration engine:
 * simulates a fixed 64-point grid (8 single-level L1 sizes plus 8 x 7
 * two-level capacity ratios) once point-major (one trace walk per
 * configuration via tryMissStats) and once batched (one trace walk
 * for all lanes via tryMissStatsBatch), then repeats the comparison
 * for the strict-inclusive variant of the 56 two-level points (the
 * interleaved-lane vector kernel, see docs/parallelism.md). Both
 * modes run pinned to a single worker thread so the comparison
 * isolates the engine itself from thread-level parallelism, and each
 * timing is the best of --reps runs on a fresh evaluator (the modes
 * are memoized, so a rep must never share an evaluator with the
 * last). Emits JSON — the source of the checked-in BENCH_batch.json
 * — and fatals if point-major and batched disagree on a single
 * counter, so the speedup claim can never drift from the equivalence
 * claim.
 *
 * "speedup_vs_prior_batched" normalizes this run's speedup by the
 * sub-major scalar engine's committed speedup (3.81 on the reference
 * machine): point-major runs identical code in both snapshots, so
 * the ratio of ratios tracks the batched-kernel improvement while
 * cancelling the machine.
 *
 * Usage: bench_batch_sweep_timing [--refs=N] [--reps=N]
 */

#include <chrono>
#include <thread>
#include <vector>

#include "bench_common.hh"
#include "util/simd.hh"
#include "util/units.hh"

using namespace tlc;

namespace {

/** The committed speedup of the engine this kernel replaced. */
constexpr double kPriorBatchedSpeedup = 3.81;

/** The fixed grid: 1K..128K L1s, alone and under 2x..128x L2s. */
std::vector<SystemConfig>
makeGrid(TwoLevelPolicy policy, bool include_single_level)
{
    std::vector<SystemConfig> configs;
    for (std::uint64_t l1 = 1_KiB; l1 <= 128_KiB; l1 *= 2) {
        SystemConfig c;
        c.assume.policy = policy;
        c.l1Bytes = l1;
        c.l2Bytes = 0;
        if (include_single_level)
            configs.push_back(c);
        for (std::uint64_t ratio = 2; ratio <= 128; ratio *= 2) {
            c.l2Bytes = l1 * ratio;
            configs.push_back(c);
        }
    }
    return configs;
}

double
seconds(std::chrono::steady_clock::time_point t0,
        std::chrono::steady_clock::time_point t1)
{
    return std::chrono::duration<double>(t1 - t0).count();
}

/**
 * Best-of-@p reps timing of one mode over @p configs, each rep on a
 * fresh evaluator (trace pre-generated outside the timed region).
 * The stats from the last rep land in @p out — reps are
 * deterministic replicas, so any rep's stats are THE stats.
 */
double
timeMode(const std::vector<SystemConfig> &configs, std::uint64_t refs,
         int reps, bool batched, std::vector<HierarchyStats> *out)
{
    Benchmark b = Benchmark::Gcc1;
    double best = 0;
    for (int rep = 0; rep < reps; ++rep) {
        MissRateEvaluator ev(refs);
        (void)ev.tryTrace(b);
        std::vector<HierarchyStats> stats;
        stats.reserve(configs.size());
        auto t0 = std::chrono::steady_clock::now();
        if (batched) {
            auto results = ev.tryMissStatsBatch(b, configs);
            for (auto &r : results)
                stats.push_back(r.value());
        } else {
            for (const SystemConfig &c : configs)
                stats.push_back(ev.tryMissStats(b, c).value());
        }
        auto t1 = std::chrono::steady_clock::now();
        double s = seconds(t0, t1);
        if (rep == 0 || s < best)
            best = s;
        *out = std::move(stats);
    }
    return best;
}

/**
 * The equivalence self-check: the speedup only counts if the batched
 * engine reproduced the point-major counters exactly.
 */
void
checkSame(const std::vector<SystemConfig> &configs,
          const std::vector<HierarchyStats> &point,
          const std::vector<HierarchyStats> &batch, const char *mode)
{
    for (std::size_t i = 0; i < configs.size(); ++i) {
        const HierarchyStats &ps = point[i];
        const HierarchyStats &bs = batch[i];
        if (bs.instrRefs != ps.instrRefs || bs.dataRefs != ps.dataRefs ||
            bs.l1iMisses != ps.l1iMisses ||
            bs.l1dMisses != ps.l1dMisses || bs.l2Hits != ps.l2Hits ||
            bs.l2Misses != ps.l2Misses || bs.swaps != ps.swaps ||
            bs.offchipWritebacks != ps.offchipWritebacks)
            fatal("batched stats diverged from point-major at %s (%s)",
                  configs[i].label().c_str(), mode);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args(argc, argv);
    applyStandardFlags(args);
    std::uint64_t refs = static_cast<std::uint64_t>(
        args.getInt("refs",
                    static_cast<std::int64_t>(
                        Workloads::defaultTraceLength() / 4)));
    int reps = static_cast<int>(args.getInt("reps", 3));
    if (reps < 1)
        fatal("--reps must be at least 1");

    std::vector<SystemConfig> grid =
        makeGrid(TwoLevelPolicy::Inclusive, true);
    std::vector<SystemConfig> strict_grid =
        makeGrid(TwoLevelPolicy::StrictInclusive, false);

    // One worker isolates the engine from thread-level parallelism.
    setParallelWorkerCount(1);
    std::vector<HierarchyStats> point_stats, batch_stats;
    double point_s = timeMode(grid, refs, reps, false, &point_stats);
    double batch_s = timeMode(grid, refs, reps, true, &batch_stats);
    std::vector<HierarchyStats> strict_point_stats, strict_batch_stats;
    double strict_point_s =
        timeMode(strict_grid, refs, reps, false, &strict_point_stats);
    double strict_batch_s =
        timeMode(strict_grid, refs, reps, true, &strict_batch_stats);
    setParallelWorkerCount(0);

    checkSame(grid, point_stats, batch_stats, "inclusive grid");
    checkSame(strict_grid, strict_point_stats, strict_batch_stats,
              "strict grid");

    double speedup = point_s / batch_s;
    std::printf("{\n"
                "  \"benchmark\": \"single-pass batched simulation\",\n"
                "  \"workload\": \"gcc1\",\n"
                "  \"design_points\": %zu,\n"
                "  \"trace_refs\": %llu,\n"
                "  \"reps\": %d,\n"
                "  \"hardware_concurrency\": %u,\n"
                "  \"simd_backend\": \"%s\",\n"
                "  \"point_major_seconds\": %.3f,\n"
                "  \"batched_seconds\": %.3f,\n"
                "  \"speedup\": %.2f,\n"
                "  \"speedup_vs_prior_batched\": %.2f,\n"
                "  \"strict_points\": %zu,\n"
                "  \"strict_point_major_seconds\": %.3f,\n"
                "  \"strict_batched_seconds\": %.3f,\n"
                "  \"strict_speedup\": %.2f\n"
                "}\n",
                grid.size(), static_cast<unsigned long long>(refs),
                reps, std::thread::hardware_concurrency(),
                simdBackendName(activeSimdBackend()), point_s, batch_s,
                speedup, speedup / kPriorBatchedSpeedup,
                strict_grid.size(), strict_point_s, strict_batch_s,
                strict_point_s / strict_batch_s);
    return 0;
}
