/**
 * @file
 * Before/after timing of the single-pass multi-configuration engine:
 * simulates a fixed 64-point grid (8 single-level L1 sizes plus 8 x 7
 * two-level capacity ratios) once point-major (one trace walk per
 * configuration via tryMissStats) and once batched (one trace walk
 * for all lanes via tryMissStatsBatch), both pinned to a single
 * worker thread so the comparison isolates the engine itself from
 * thread-level parallelism. Emits JSON — the source of the
 * checked-in BENCH_batch.json — and fatals if the two modes disagree
 * on a single counter, so the speedup claim can never drift from the
 * equivalence claim.
 *
 * Usage: bench_batch_sweep_timing [--refs=N]
 */

#include <chrono>
#include <thread>
#include <vector>

#include "bench_common.hh"
#include "util/units.hh"

using namespace tlc;

namespace {

/** The fixed grid: 1K..128K L1s, alone and under 2x..128x L2s. */
std::vector<SystemConfig>
makeGrid()
{
    std::vector<SystemConfig> configs;
    for (std::uint64_t l1 = 1_KiB; l1 <= 128_KiB; l1 *= 2) {
        SystemConfig c;
        c.l1Bytes = l1;
        c.l2Bytes = 0;
        configs.push_back(c);
        for (std::uint64_t ratio = 2; ratio <= 128; ratio *= 2) {
            c.l2Bytes = l1 * ratio;
            configs.push_back(c);
        }
    }
    return configs;
}

double
seconds(std::chrono::steady_clock::time_point t0,
        std::chrono::steady_clock::time_point t1)
{
    return std::chrono::duration<double>(t1 - t0).count();
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args(argc, argv);
    applyStandardFlags(args);
    std::uint64_t refs = static_cast<std::uint64_t>(
        args.getInt("refs",
                    static_cast<std::int64_t>(
                        Workloads::defaultTraceLength() / 4)));

    std::vector<SystemConfig> configs = makeGrid();
    Benchmark b = Benchmark::Gcc1;

    // Both modes run on one worker and a fresh evaluator, traces
    // pre-generated outside the timed region.
    setParallelWorkerCount(1);

    MissRateEvaluator point_major(refs);
    (void)point_major.tryTrace(b);
    auto t0 = std::chrono::steady_clock::now();
    std::vector<HierarchyStats> point_stats;
    for (const SystemConfig &c : configs)
        point_stats.push_back(point_major.tryMissStats(b, c).value());
    auto t1 = std::chrono::steady_clock::now();

    MissRateEvaluator batched(refs);
    (void)batched.tryTrace(b);
    auto t2 = std::chrono::steady_clock::now();
    auto batch_results = batched.tryMissStatsBatch(b, configs);
    auto t3 = std::chrono::steady_clock::now();
    setParallelWorkerCount(0);

    // Equivalence self-check: the speedup only counts if the batched
    // engine reproduced the point-major counters exactly.
    for (std::size_t i = 0; i < configs.size(); ++i) {
        HierarchyStats bs = batch_results[i].value();
        const HierarchyStats &ps = point_stats[i];
        if (bs.instrRefs != ps.instrRefs || bs.dataRefs != ps.dataRefs ||
            bs.l1iMisses != ps.l1iMisses ||
            bs.l1dMisses != ps.l1dMisses || bs.l2Hits != ps.l2Hits ||
            bs.l2Misses != ps.l2Misses || bs.swaps != ps.swaps ||
            bs.offchipWritebacks != ps.offchipWritebacks)
            fatal("batched stats diverged from point-major at %s",
                  configs[i].label().c_str());
    }

    double point_s = seconds(t0, t1);
    double batch_s = seconds(t2, t3);
    std::printf("{\n"
                "  \"benchmark\": \"single-pass batched simulation\",\n"
                "  \"workload\": \"gcc1\",\n"
                "  \"design_points\": %zu,\n"
                "  \"trace_refs\": %llu,\n"
                "  \"hardware_concurrency\": %u,\n"
                "  \"point_major_seconds\": %.3f,\n"
                "  \"batched_seconds\": %.3f,\n"
                "  \"speedup\": %.2f\n"
                "}\n",
                configs.size(), static_cast<unsigned long long>(refs),
                std::thread::hardware_concurrency(), point_s, batch_s,
                point_s / batch_s);
    return 0;
}
