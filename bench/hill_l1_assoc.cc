/**
 * @file
 * Extension experiment: Hill's "Case for Direct-Mapped Caches"
 * (reference [3]) checked inside this paper's framework.
 *
 * The paper restricts its design space to direct-mapped L1s, citing
 * Hill. This driver re-runs the single-level study with 2-way and
 * 4-way L1s: associativity cuts the miss rate but stretches the
 * processor cycle (the L1 sets the clock), and for most sizes and
 * workloads the direct-mapped cache wins on TPI — reproducing the
 * justification for the paper's design-space restriction.
 */

#include <iostream>

#include "bench_common.hh"
#include "cache/single_level.hh"
#include "core/tpi.hh"
#include "util/units.hh"

using namespace tlc;

int
main(int argc, char **argv)
{
    bench::parseDriverArgs(argc, argv); // --threads=N
    MissRateEvaluator ev;
    Explorer ex(ev);
    std::uint64_t refs = Workloads::defaultTraceLength() / 2;

    bench::banner("Hill check: L1 associativity vs cycle time "
                  "(single-level, 50ns off-chip)");
    Table cyc({"l1_size", "cycle_dm_ns", "cycle_2way_ns",
               "cycle_4way_ns"});
    for (std::uint64_t s : {4_KiB, 16_KiB, 64_KiB}) {
        cyc.beginRow();
        cyc.cell(formatSize(s));
        cyc.cell(ex.timingOf(s, 1, 16).cycleNs, 3);
        cyc.cell(ex.timingOf(s, 2, 16).cycleNs, 3);
        cyc.cell(ex.timingOf(s, 4, 16).cycleNs, 3);
    }
    cyc.printAscii(std::cout);

    Table t({"workload", "l1_size", "assoc", "missrate", "tpi_ns",
             "dm_wins"});
    int dm_wins = 0, cases = 0;
    for (Benchmark b :
         {Benchmark::Gcc1, Benchmark::Espresso, Benchmark::Li,
          Benchmark::Tomcatv}) {
        TraceBuffer trace = Workloads::generate(b, refs);
        for (std::uint64_t size : {4_KiB, 16_KiB, 64_KiB}) {
            double tpi_dm = 0;
            for (std::uint32_t assoc : {1u, 2u, 4u}) {
                CacheParams p;
                p.sizeBytes = size;
                p.lineBytes = 16;
                p.assoc = assoc;
                p.repl = ReplPolicy::LRU;
                SingleLevelHierarchy h(p);
                h.simulate(trace, refs / 10);

                TpiParams tp;
                tp.l1CycleNs = ex.timingOf(size, assoc, 16).cycleNs;
                tp.offchipNs = 50.0;
                tp.hasL2 = false;
                double tpi = computeTpi(h.stats(), tp).tpi;
                if (assoc == 1)
                    tpi_dm = tpi;

                t.beginRow();
                t.cell(Workloads::info(b).name);
                t.cell(formatSize(size));
                t.cell(assoc);
                t.cell(h.stats().l1MissRate(), 4);
                t.cell(tpi, 3);
                if (assoc == 1) {
                    t.cell("-");
                } else {
                    bool wins = tpi_dm <= tpi;
                    t.cell(wins ? "yes" : "NO");
                    dm_wins += wins;
                    ++cases;
                }
            }
        }
    }
    t.printAscii(std::cout);
    std::printf("\ndirect-mapped wins %d of %d head-to-heads "
                "(Hill, and this paper's design-space restriction: "
                "the associativity miss-rate gain rarely repays the "
                "cycle-time cost at level one).\n",
                dm_wins, cases);
    return 0;
}
