/**
 * @file
 * Shared plumbing for the figure/table drivers: default trace
 * lengths, shared evaluator construction, and header banners.
 */

#ifndef TLC_BENCH_COMMON_HH
#define TLC_BENCH_COMMON_HH

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "core/explorer.hh"
#include "trace/workload.hh"
#include "util/args.hh"
#include "util/logging.hh"
#include "util/parallel.hh"
#include "util/plot.hh"
#include "util/profiler.hh"
#include "util/table.hh"

namespace tlc::bench {

/** Print a figure banner. */
inline void
banner(const std::string &title)
{
    std::printf("\n==== %s ====\n", title.c_str());
}

/**
 * Parse the flags every sweep driver shares and apply them:
 * --threads=N sets the parallelFor worker count (0 = back to
 * TLC_THREADS / hardware default), --quiet/--verbose set the log
 * level, and --profile enables the per-phase profiler (dumped to
 * stderr at exit by applyStandardFlags's atexit hook). Returns the
 * parser so drivers can read their own options from the same
 * command line.
 */
inline ArgParser
parseDriverArgs(int argc, const char *const *argv)
{
    ArgParser args(argc, argv);
    applyStandardFlags(args);
    return args;
}

/**
 * If TLC_CSV_DIR is set, also dump @p t there as <name>.csv so the
 * figure data can be re-plotted outside the terminal.
 */
inline void
maybeWriteCsv(const std::string &name, const Table &t)
{
    const char *dir = std::getenv("TLC_CSV_DIR");
    if (!dir || !*dir)
        return;
    std::string file;
    for (char c : name)
        file += std::isalnum(static_cast<unsigned char>(c)) ? c : '_';
    std::string path = std::string(dir) + "/" + file + ".csv";
    std::ofstream os(path);
    if (os)
        t.printCsv(os);
    else
        tlc::warn("cannot write CSV '%s'", path.c_str());
}

/**
 * Print the best-performance envelope of a priced sweep the way the
 * paper annotates its figures: area, TPI, configuration label.
 */
inline void
printEnvelope(const std::string &series, const Envelope &env)
{
    Table t({"series", "config", "area_rbe", "tpi_ns"});
    for (const auto &p : env.points()) {
        t.beginRow();
        t.cell(series);
        t.cell(p.label);
        t.cell(p.area, 0);
        t.cell(p.tpi, 3);
    }
    t.printAscii(std::cout);
    maybeWriteCsv("envelope_" + series, t);
}

/** Print every priced point of a sweep (the figures' scatter). */
inline void
printPoints(const std::string &series,
            const std::vector<DesignPoint> &points)
{
    Table t({"series", "config", "area_rbe", "l1_cyc_ns", "l2_cpu_cyc",
             "l1_missrate", "global_missrate", "tpi_ns"});
    for (const auto &p : points) {
        t.beginRow();
        t.cell(series);
        t.cell(p.config.label());
        t.cell(p.areaRbe, 0);
        t.cell(p.l1Timing.cycleNs, 3);
        t.cell(p.config.hasL2() ? p.tpi.l2CycleCpu : 0u);
        t.cell(p.miss.l1MissRate(), 4);
        t.cell(p.miss.globalMissRate(), 4);
        t.cell(p.tpi.tpi, 3);
    }
    t.printAscii(std::cout);
    maybeWriteCsv("points_" + series, t);
}

/**
 * Render one or more envelopes as a log-log ASCII figure, the way
 * the paper draws its solid/dotted/dashed staircases. Each envelope
 * is sampled on a log-area grid so the staircase shape is visible
 * between its corner points.
 */
inline void
plotEnvelopes(const std::string &title,
              const std::vector<std::pair<std::string, Envelope>> &envs)
{
    static const char markers[] = {'.', 'o', '*', '+', 'x', '#'};
    ScatterPlot plot(72, 20, true, true);
    plot.setXLabel("area (rbe, log)");
    plot.setYLabel(title + "  [TPI ns, log]");
    std::size_t i = 0;
    for (const auto &[name, env] : envs) {
        plot.addSeries(name, markers[i % sizeof(markers)]);
        ++i;
        if (env.empty())
            continue;
        double lo = env.points().front().area;
        double hi = env.points().back().area;
        for (double a = lo; a <= hi * 1.0001; a *= 1.08) {
            double t = env.bestTpiWithin(a);
            if (!std::isinf(t))
                plot.addPoint(name, a, t);
        }
    }
    plot.render(std::cout);
}

} // namespace tlc::bench

#endif // TLC_BENCH_COMMON_HH
