/**
 * @file
 * Extension experiment: the paper's Future Work section (§10),
 * executed. Tests both conjectures with the pipeline model:
 *
 *  1. Multicycle (pipelined) L1 caches decouple the clock from L1
 *     size, which should REDUCE the advantage of two-level caching
 *     in baseline systems;
 *  2. Non-blocking loads overlap misses with execution, which
 *     should INCREASE the value of a fast on-chip L2.
 *
 * Latencies are derived from the timing model: the datapath clock
 * is fixed at 2 ns; L1 latency is ceil(access/clock); the L2-hit
 * and off-chip services follow the TPI model's penalty structure.
 * Load-latency tolerance is set per workload class (numeric codes
 * tolerate more, §10).
 */

#include <cmath>
#include <iostream>

#include "bench_common.hh"
#include "cache/single_level.hh"
#include "pipeline/pipeline.hh"
#include "util/units.hh"

using namespace tlc;

namespace {

constexpr double kClockNs = 2.0;

double
loadUseProb(Benchmark b)
{
    switch (b) {
      case Benchmark::Fpppp:
      case Benchmark::Doduc:
      case Benchmark::Tomcatv:
        return 0.30; // numeric: latency-tolerant (§10)
      default:
        return 0.65; // integer: latency-bound
    }
}

} // namespace

int
main()
{
    MissRateEvaluator ev(Workloads::defaultTraceLength() / 2);
    Explorer ex(ev);

    auto l1_latency = [&](std::uint64_t size) {
        return static_cast<unsigned>(
            std::ceil(ex.timingOf(size, 1, 16).accessNs / kClockNs));
    };
    auto l2_latency = [&](std::uint64_t size) {
        unsigned c = static_cast<unsigned>(
            std::ceil(ex.timingOf(size, 4, 16).cycleNs / kClockNs));
        return 2 * c + 1; // the TPI model's L2-hit penalty shape
    };
    const unsigned offchip = static_cast<unsigned>(
        std::ceil(50.0 / kClockNs)) + 1;

    bench::banner("Future work (Section 10): multicycle L1 + "
                  "non-blocking loads (CPI at 2ns clock)");
    std::printf("L1 latencies (cycles): 8K=%u, 32K=%u, 128K=%u; "
                "L2-hit penalties: 64K=%u, 256K=%u; offchip=%u\n",
                l1_latency(8_KiB), l1_latency(32_KiB),
                l1_latency(128_KiB), l2_latency(64_KiB),
                l2_latency(256_KiB), offchip);

    Table t({"workload", "config", "mode", "mshrs", "cpi", "tpi_ns",
             "ifetch_stall", "loaduse_stall", "mshr_stall"});
    Table summary({"workload", "2lvl_gain_blocking_pct",
                   "2lvl_gain_nonblocking_pct"});

    for (Benchmark b : Workloads::all()) {
        const TraceBuffer &trace = *ev.tryTrace(b).value();
        std::uint64_t warmup = ev.warmupRefs();

        struct Cfg
        {
            const char *name;
            std::uint64_t l1, l2;
        };
        const Cfg cfgs[] = {{"32:0", 32_KiB, 0}, {"8:64", 8_KiB, 64_KiB}};
        double cpi[2][2]; // [cfg][blocking/nonblocking]

        for (int ci = 0; ci < 2; ++ci) {
            for (unsigned mshrs : {1u, 8u}) {
                PipelineParams p;
                p.cycleNs = kClockNs;
                p.l1Cycles = l1_latency(cfgs[ci].l1);
                p.l2HitCycles =
                    cfgs[ci].l2 ? l2_latency(cfgs[ci].l2) : 0;
                p.offchipCycles = offchip;
                p.mshrs = mshrs;
                p.loadUseStallProb = loadUseProb(b);

                std::unique_ptr<Hierarchy> h;
                CacheParams l1p;
                l1p.sizeBytes = cfgs[ci].l1;
                l1p.lineBytes = 16;
                l1p.assoc = 1;
                if (cfgs[ci].l2) {
                    CacheParams l2p;
                    l2p.sizeBytes = cfgs[ci].l2;
                    l2p.lineBytes = 16;
                    l2p.assoc = 4;
                    l2p.repl = ReplPolicy::Random;
                    h = std::make_unique<TwoLevelHierarchy>(
                        l1p, l2p, TwoLevelPolicy::Inclusive);
                } else {
                    h = std::make_unique<SingleLevelHierarchy>(l1p);
                }
                PipelineSimulator sim(p);
                PipelineResult r = sim.run(*h, trace, warmup);
                cpi[ci][mshrs > 1] = r.cpi();

                t.beginRow();
                t.cell(Workloads::info(b).name);
                t.cell(cfgs[ci].name);
                t.cell(mshrs == 1 ? "blocking" : "non-blocking");
                t.cell(mshrs);
                t.cell(r.cpi(), 3);
                t.cell(r.tpiNs(kClockNs), 3);
                t.cell(r.ifetchStallCycles);
                t.cell(r.loadUseStallCycles);
                t.cell(r.mshrFullStallCycles);
            }
        }
        summary.beginRow();
        summary.cell(Workloads::info(b).name);
        summary.cell(100.0 * (cpi[0][0] - cpi[1][0]) / cpi[0][0], 1);
        summary.cell(100.0 * (cpi[0][1] - cpi[1][1]) / cpi[0][1], 1);
    }
    t.printAscii(std::cout);
    std::printf("\ntwo-level gain over single-level (32:0 -> 8:64), "
                "blocking vs non-blocking:\n");
    summary.printAscii(std::cout);
    std::printf("\nConjecture check: with a fixed clock the large "
                "single-level cache no longer pays a cycle-time tax "
                "(conjecture 1), while non-blocking loads shift the "
                "comparison (conjecture 2) — see EXPERIMENTS.md.\n");
    return 0;
}
