/**
 * @file
 * Extension experiment: multiprogramming, which the paper scopes
 * out (§2.2). Interleaves pairs of workloads at varying context-
 * switch quanta and measures what the switches cost each cache
 * organization — including whether a two-level hierarchy softens
 * the blow (the big L2 retains more of the preempted process's
 * working set).
 */

#include <iostream>

#include "bench_common.hh"
#include "cache/single_level.hh"
#include "trace/interleave.hh"
#include "util/units.hh"

using namespace tlc;

int
main()
{
    std::uint64_t per_proc = Workloads::defaultTraceLength() / 4;
    std::uint64_t total = 2 * per_proc;

    bench::banner("Multiprogramming: gcc1 + espresso, global miss "
                  "rate vs context-switch quantum");
    TraceBuffer g = Workloads::generate(Benchmark::Gcc1, per_proc);
    TraceBuffer e = Workloads::generate(Benchmark::Espresso, per_proc);

    struct Cfg
    {
        const char *name;
        std::uint64_t l1, l2;
    };
    const Cfg cfgs[] = {
        {"8:0", 8_KiB, 0},
        {"32:0", 32_KiB, 0},
        {"8:64", 8_KiB, 64_KiB},
        {"8:256", 8_KiB, 256_KiB},
    };

    Table t({"config", "solo_mix", "q=100K", "q=10K", "q=1K",
             "q1K_penalty_pct"});
    MissRateEvaluator ev(per_proc);
    for (const Cfg &c : cfgs) {
        SystemConfig sc;
        sc.l1Bytes = c.l1;
        sc.l2Bytes = c.l2;
        double solo =
            (ev.tryMissStats(Benchmark::Gcc1, sc)
                 .value()
                 .globalMissRate() +
             ev.tryMissStats(Benchmark::Espresso, sc)
                 .value()
                 .globalMissRate()) /
            2.0;

        auto mixed = [&](std::uint64_t q) {
            TraceBuffer mix = interleaveTraces({&g, &e}, q, total);
            std::unique_ptr<Hierarchy> h;
            if (c.l2) {
                h = std::make_unique<TwoLevelHierarchy>(
                    sc.l1Params(), sc.l2Params(),
                    TwoLevelPolicy::Inclusive);
            } else {
                h = std::make_unique<SingleLevelHierarchy>(sc.l1Params());
            }
            h->simulate(mix, total / 10);
            return h->stats().globalMissRate();
        };
        double q100k = mixed(100000);
        double q10k = mixed(10000);
        double q1k = mixed(1000);
        t.beginRow();
        t.cell(c.name);
        t.cell(solo, 4);
        t.cell(q100k, 4);
        t.cell(q10k, 4);
        t.cell(q1k, 4);
        t.cell(100.0 * (q1k - solo) / solo, 1);
    }
    t.printAscii(std::cout);
    std::printf("\nReading: fast switching refills the caches "
                "constantly; the penalty grows with on-chip capacity "
                "at stake. (Cf. Mogul & Borg, WRL TN-16 — the study "
                "this paper defers to.)\n");
    return 0;
}
