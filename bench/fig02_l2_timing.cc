/**
 * @file
 * Figure 2: L2 access and cycle times with 4 KB L1 caches.
 *
 * Plots the raw L2 (4-way) access/cycle times against L2 area, and
 * the rounded L2 access time in L1 (= CPU) cycles: the right-hand
 * axis of the paper's figure. The paper's worked example — an
 * L2-hit penalty of (2x2)+1 = 5 cycles — is checked at the bottom.
 */

#include <iostream>

#include "bench_common.hh"
#include "util/units.hh"

using namespace tlc;

int
main()
{
    bench::banner("Figure 2: L2 timing with 4KB L1 (4-way L2)");
    AccessTimeModel timing;
    AreaModel area;

    double l1_cycle =
        timing.optimize(SramGeometry{4_KiB, 16, 1, 32, 64}).cycleNs;
    std::printf("L1 (4KB, DM) cycle time: %.3f ns\n\n", l1_cycle);

    Table t({"l2_size", "area_rbe", "access_ns", "cycle_ns",
             "cycle_cpu_cycles", "l2_hit_penalty_cpu"});
    for (std::uint64_t s = 8_KiB; s <= 256_KiB; s *= 2) {
        SramGeometry g{s, 16, 4, 32, 64};
        TimingResult r = timing.optimize(g);
        unsigned cycles = cyclesCeil(r.cycleNs, l1_cycle);
        t.beginRow();
        t.cell(formatSize(s));
        t.cell(area.area(g, r.dataOrg, r.tagOrg), 0);
        t.cell(r.accessNs, 3);
        t.cell(r.cycleNs, 3);
        t.cell(cycles);
        t.cell(2 * cycles + 1);
    }
    t.printAscii(std::cout);

    std::printf("\nPaper Section 2.5 example: L2 cycle rounds to 2 CPU "
                "cycles => miss penalty (2x2)+1 = 5 cycles.\n"
                "Observation (paper): on-chip L1->L2 distance is far "
                "smaller than L1 -> off-chip (50 ns).\n");
    return 0;
}
