/**
 * @file
 * Service throughput: drills the whole tlcd stack in one process —
 * a SweepService with a persistent store behind a SweepDaemon on a
 * temporary Unix socket — with one cold request, one warm re-request
 * and then N concurrent clients, and emits the JSON document behind
 * the checked-in BENCH_service.json. The pinned facts are the
 * service's contract, not its speed: every response byte-identical
 * to the first, the warm re-sweep resolving every point from the
 * shared result store (store_hits == points, store_misses == 0),
 * and the warm/cold speedup staying a ratio > 1.
 *
 * Usage: bench_service_throughput [--refs=N] [--clients=N]
 *                                 [--threads=N]
 */

#include <chrono>
#include <cstdlib>
#include <thread>
#include <unistd.h>
#include <vector>

#include "bench_common.hh"
#include "service/client.hh"
#include "service/daemon.hh"
#include "service/sweep_codec.hh"
#include "service/sweep_service.hh"
#include "util/json.hh"

using namespace tlc;

namespace {

double
seconds(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/** One accounting field out of a "tlc-sweep-stats-v1" document. */
std::uint64_t
statsField(const std::string &stats, const char *key)
{
    Expected<JsonValue> parsed = jsonParse(stats);
    if (!parsed.ok())
        fatal("stats document: %s", parsed.status().message().c_str());
    const JsonValue *v = parsed.value().find(key);
    if (!v)
        fatal("stats document has no \"%s\"", key);
    Expected<std::uint64_t> n = v->asU64();
    if (!n.ok())
        fatal("stats \"%s\": %s", key, n.status().message().c_str());
    return n.value();
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args = bench::parseDriverArgs(argc, argv);
    std::uint64_t refs = static_cast<std::uint64_t>(
        args.getInt("refs",
                    static_cast<std::int64_t>(
                        Workloads::defaultTraceLength() / 8)));
    std::size_t clients =
        static_cast<std::size_t>(args.getInt("clients", 3));

    char dirTemplate[] = "/tmp/tlc_bench_service_XXXXXX";
    const char *dir = mkdtemp(dirTemplate);
    if (!dir)
        fatal("mkdtemp failed");
    const std::string socketPath = std::string(dir) + "/tlcd.sock";
    const std::string storePath = std::string(dir) + "/store.tlcr";

    service::SweepServiceOptions sopts;
    sopts.resultStorePath = storePath;
    service::SweepService svc(sopts);
    Status s = svc.init();
    if (!s.ok())
        fatal("store: %s", s.message().c_str());
    service::SweepDaemon daemon(svc, socketPath);
    s = daemon.start();
    if (!s.ok())
        fatal("daemon: %s", s.message().c_str());

    service::SweepRequestSpec spec;
    spec.tag = "bench-service-throughput";
    spec.benchmarks = {Benchmark::Gcc1};
    spec.traceRefs = refs;
    const std::string request = service::sweepRequestToJson(spec);
    const std::size_t points = spec.materializeConfigs().size();

    auto submit = [&]() {
        Expected<service::ServiceReply> r =
            service::submitSweepRequest(socketPath, request);
        if (!r.ok())
            fatal("submit: %s", r.status().toString().c_str());
        return std::move(r.value());
    };

    auto t0 = std::chrono::steady_clock::now();
    service::ServiceReply cold = submit();
    const double coldSeconds = seconds(t0);

    t0 = std::chrono::steady_clock::now();
    service::ServiceReply warm = submit();
    const double warmSeconds = seconds(t0);

    // N clients race the same request against the shared store.
    std::vector<service::ServiceReply> racing(clients);
    t0 = std::chrono::steady_clock::now();
    {
        std::vector<std::thread> team;
        for (std::size_t i = 0; i < clients; ++i)
            team.emplace_back([&, i] { racing[i] = submit(); });
        for (auto &th : team)
            th.join();
    }
    const double concurrentSeconds = seconds(t0);

    daemon.stop();

    bool identical = warm.responseJson == cold.responseJson;
    for (const auto &r : racing)
        identical = identical && r.responseJson == cold.responseJson;

    const std::uint64_t warmHits =
        statsField(warm.statsJson, "store_hits");
    const std::uint64_t warmMisses =
        statsField(warm.statsJson, "store_misses");
    const std::uint64_t coldAppends =
        statsField(cold.statsJson, "store_appends");

    ::unlink(socketPath.c_str());
    ::unlink(storePath.c_str());
    ::rmdir(dir);

    std::printf(
        "{\n"
        "  \"benchmark\": \"sweep service: cold, warm, and %zu "
        "concurrent clients of one daemon\",\n"
        "  \"requests\": %zu,\n"
        "  \"points_per_response\": %zu,\n"
        "  \"trace_refs\": %llu,\n"
        "  \"responses_identical\": %d,\n"
        "  \"cold_store_appends\": %llu,\n"
        "  \"warm_store_hits\": %llu,\n"
        "  \"warm_store_misses\": %llu,\n"
        "  \"cold_seconds\": %s,\n"
        "  \"warm_seconds\": %s,\n"
        "  \"concurrent_seconds\": %s,\n"
        "  \"warm_speedup\": %s\n"
        "}\n",
        clients, clients + 2, points,
        static_cast<unsigned long long>(refs), identical ? 1 : 0,
        static_cast<unsigned long long>(coldAppends),
        static_cast<unsigned long long>(warmHits),
        static_cast<unsigned long long>(warmMisses),
        jsonNumber(coldSeconds).c_str(),
        jsonNumber(warmSeconds).c_str(),
        jsonNumber(concurrentSeconds).c_str(),
        jsonNumber(warmSeconds > 0 ? coldSeconds / warmSeconds : 0)
            .c_str());
    return 0;
}
