/**
 * @file
 * Recovery drill of the fault-isolated sweep supervisor: sweeps the
 * fixed 64-point grid once in process (the reference) and once under
 * the process supervisor with a permanent crash injected at a known
 * design point. Fatals unless the supervised run quarantines EXACTLY
 * the poisoned point and reproduces every healthy point bit-exactly
 * — so the recovery numbers below can never drift from the
 * graceful-degradation claim they advertise. A third, fault-free
 * supervised run must match the reference completely.
 *
 * Emits JSON — the source of the checked-in BENCH_recovery.json.
 * The counts (quarantined points, retries, bisections, worker
 * launches) are deterministic and gate CI as exact-match fields in
 * tools/bench_compare.py; wall-clock fields are *_seconds and
 * ignored.
 *
 * Usage: bench_supervisor_recovery [--refs=N]
 */

#include <chrono>
#include <thread>
#include <vector>

#include "bench_common.hh"
#include "core/shard_runner.hh"
#include "util/units.hh"

using namespace tlc;

namespace {

/** The fixed grid: 1K..128K L1s, alone and under 2x..128x L2s. */
std::vector<SystemConfig>
makeGrid()
{
    std::vector<SystemConfig> configs;
    for (std::uint64_t l1 = 1_KiB; l1 <= 128_KiB; l1 *= 2) {
        SystemConfig c;
        c.l1Bytes = l1;
        c.l2Bytes = 0;
        configs.push_back(c);
        for (std::uint64_t ratio = 2; ratio <= 128; ratio *= 2) {
            c.l2Bytes = l1 * ratio;
            configs.push_back(c);
        }
    }
    return configs;
}

double
seconds(std::chrono::steady_clock::time_point t0,
        std::chrono::steady_clock::time_point t1)
{
    return std::chrono::duration<double>(t1 - t0).count();
}

void
requireIdentical(const DesignPoint &a, const DesignPoint &b)
{
    if (a.config.label() != b.config.label() || a.areaRbe != b.areaRbe ||
        a.miss.instrRefs != b.miss.instrRefs ||
        a.miss.dataRefs != b.miss.dataRefs ||
        a.miss.l1iMisses != b.miss.l1iMisses ||
        a.miss.l1dMisses != b.miss.l1dMisses ||
        a.miss.l2Hits != b.miss.l2Hits ||
        a.miss.l2Misses != b.miss.l2Misses ||
        a.miss.swaps != b.miss.swaps ||
        a.miss.offchipWritebacks != b.miss.offchipWritebacks ||
        a.tpi.tpi != b.tpi.tpi) {
        fatal("supervised point %s diverged from the in-process run",
              a.config.label().c_str());
    }
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args(argc, argv);
    applyStandardFlags(args);
    std::uint64_t refs = static_cast<std::uint64_t>(
        args.getInt("refs",
                    static_cast<std::int64_t>(
                        Workloads::defaultTraceLength() / 4)));

    const std::vector<SystemConfig> configs = makeGrid();
    const Benchmark b = Benchmark::Gcc1;
    const std::uint32_t poisoned = 12;
    setParallelWorkerCount(1);

    // Reference: the in-process engine.
    EvaluatorOptions evopts;
    evopts.traceRefs = refs;
    MissRateEvaluator ev(evopts);
    Explorer ex(ev);
    FailureReport cleanReport;
    auto t0 = std::chrono::steady_clock::now();
    std::vector<DesignPoint> reference =
        ex.evaluateAll(b, configs, &cleanReport);
    auto t1 = std::chrono::steady_clock::now();
    if (!cleanReport.empty() || reference.size() != configs.size())
        fatal("reference sweep failed");

    SupervisorOptions opts;
    opts.pointsPerShard = 16;
    opts.retry.maxRetries = 1;
    opts.retry.backoffBaseSeconds = 0.001;
    opts.retry.backoffMaxSeconds = 0.01;
    opts.evaluator = evopts;

    // Supervised, fault-free: must match the reference completely.
    {
        MissRateEvaluator sev(evopts);
        Explorer sex(sev);
        FailureReport report;
        SupervisedSweep clean =
            supervisedEvaluateAll(sex, b, configs, &report, opts);
        if (!report.empty() || clean.points.size() != reference.size())
            fatal("fault-free supervised sweep diverged");
        for (std::size_t i = 0; i < reference.size(); ++i)
            requireIdentical(clean.points[i], reference[i]);
    }

    // Supervised with a permanent crash at the poisoned point: the
    // sweep completes, quarantines exactly that point, and every
    // other point is bit-exact.
    opts.faults.faults.push_back([] {
        ShardFault f;
        f.kind = ShardFault::Kind::Crash;
        f.atIndex = poisoned;
        f.times = -1;
        return f;
    }());
    MissRateEvaluator sev(evopts);
    Explorer sex(sev);
    FailureReport report;
    auto t2 = std::chrono::steady_clock::now();
    SupervisedSweep recovered =
        supervisedEvaluateAll(sex, b, configs, &report, opts);
    auto t3 = std::chrono::steady_clock::now();
    setParallelWorkerCount(0);

    if (recovered.points.size() != reference.size() - 1)
        fatal("expected exactly one quarantined point, lost %zu",
              reference.size() - recovered.points.size());
    std::size_t ri = 0;
    for (std::size_t i = 0; i < reference.size(); ++i) {
        if (i == poisoned)
            continue;
        requireIdentical(recovered.points[ri++], reference[i]);
    }
    if (report.size() != 1 ||
        report.failures()[0].subject != configs[poisoned].label() ||
        report.failures()[0].status.code() != StatusCode::WorkerCrash)
        fatal("quarantine report does not name the poisoned point");

    const SupervisionStats &st = recovered.stats;
    std::printf(
        "{\n"
        "  \"benchmark\": \"supervised sweep crash recovery\",\n"
        "  \"workload\": \"gcc1\",\n"
        "  \"design_points\": %zu,\n"
        "  \"trace_refs\": %llu,\n"
        "  \"hardware_concurrency\": %u,\n"
        "  \"points_priced\": %zu,\n"
        "  \"quarantined_points\": %llu,\n"
        "  \"worker_launches\": %llu,\n"
        "  \"worker_crashes\": %llu,\n"
        "  \"shards_resolved\": %llu,\n"
        "  \"shard_retries\": %llu,\n"
        "  \"shard_bisections\": %llu,\n"
        "  \"healthy_points_identical\": true,\n"
        "  \"in_process_seconds\": %.3f,\n"
        "  \"supervised_recovery_seconds\": %.3f\n"
        "}\n",
        configs.size(), static_cast<unsigned long long>(refs),
        std::thread::hardware_concurrency(), recovered.points.size(),
        static_cast<unsigned long long>(st.quarantined),
        static_cast<unsigned long long>(st.attempts),
        static_cast<unsigned long long>(st.crashes),
        static_cast<unsigned long long>(st.shards),
        static_cast<unsigned long long>(st.retries),
        static_cast<unsigned long long>(st.bisections),
        seconds(t0, t1), seconds(t2, t3));
    return 0;
}
