/**
 * @file
 * Extension experiment: write traffic. The paper times writes as
 * reads (§2.2: write-allocate, fetch-on-write) and uses write-back
 * caches; this driver measures the off-chip WRITE traffic that
 * choice produces and compares it against what write-through L1s
 * would have sent (one off-chip word per store), following the
 * analysis style of Jouppi's "Cache Write Policies" (WRL 91/12).
 */

#include <iostream>

#include "bench_common.hh"
#include "util/units.hh"

using namespace tlc;

int
main()
{
    MissRateEvaluator ev;

    bench::banner("Write traffic: write-back vs write-through "
                  "(per 1000 references)");
    for (auto [l1, l2] :
         {std::pair<std::uint64_t, std::uint64_t>{8_KiB, 0},
          {8_KiB, 64_KiB}, {32_KiB, 256_KiB}}) {
        SystemConfig c;
        c.l1Bytes = l1;
        c.l2Bytes = l2;
        Table t({"workload", "stores_per_1k", "writebacks_per_1k",
                 "wb_bytes_per_1k", "wt_bytes_per_1k",
                 "writeback_saving_x"});
        for (Benchmark b : Workloads::all()) {
            HierarchyStats s = ev.tryMissStats(b, c).value();
            double per1k = 1000.0 / static_cast<double>(s.totalRefs());
            // We regenerate store counts from the trace (stats fold
            // loads and stores together).
            const TraceBuffer &trace = *ev.tryTrace(b).value();
            double stores = static_cast<double>(trace.storeRefs());
            double measured_frac =
                static_cast<double>(s.totalRefs()) /
                static_cast<double>(trace.totalRefs());
            double stores_measured = stores * measured_frac;

            double wb_lines =
                static_cast<double>(s.offchipWritebacks);
            double wb_bytes = wb_lines * 16.0; // full lines
            double wt_bytes = stores_measured * 8.0; // one word each

            t.beginRow();
            t.cell(Workloads::info(b).name);
            t.cell(stores_measured * per1k, 1);
            t.cell(wb_lines * per1k, 2);
            t.cell(wb_bytes * per1k, 1);
            t.cell(wt_bytes * per1k, 1);
            t.cell(wb_bytes > 0 ? wt_bytes / wb_bytes : 0.0, 1);
        }
        std::printf("\nconfiguration %s:\n", c.label().c_str());
        t.printAscii(std::cout);
    }
    std::printf("\nReading: write-back caches coalesce stores into "
                "line-sized write-backs; the larger the on-chip "
                "hierarchy, the bigger the off-chip write-traffic "
                "saving over write-through.\n");
    return 0;
}
