/**
 * @file
 * Figure 21: exclusion vs inclusion during swapping with
 * direct-mapped caches — the paper's didactic example, executed on
 * the real simulator. 4-line L1s, 16-line direct-mapped L2.
 */

#include <cstdio>

#include "cache/two_level.hh"

using namespace tlc;

namespace {

CacheParams
params(std::uint64_t size, std::uint32_t assoc)
{
    CacheParams p;
    p.sizeBytes = size;
    p.lineBytes = 16;
    p.assoc = assoc;
    return p;
}

void
show(const TwoLevelHierarchy &h, const char *when)
{
    std::printf("  %-28s L1d lines:", when);
    for (auto l : h.dcache().residentLineAddrs())
        std::printf(" %llu", static_cast<unsigned long long>(l));
    std::printf("   L2 lines:");
    for (auto l : h.l2cache().residentLineAddrs())
        std::printf(" %llu", static_cast<unsigned long long>(l));
    std::printf("\n");
}

} // namespace

int
main()
{
    std::printf("==== Figure 21: exclusion vs inclusion during "
                "swapping (direct-mapped caches) ====\n");
    std::printf("first-level: 4 lines; second-level: 16 lines "
                "(direct-mapped); 16B lines\n");

    {
        std::printf("\n(a) second-level conflict => exclusion\n");
        std::printf("    A = line 13, E = line 29: same L1 line (1), "
                    "same L2 line (13)\n");
        TwoLevelHierarchy h(params(64, 1), params(256, 1),
                            TwoLevelPolicy::Exclusive);
        const std::uint32_t A = 13 * 16, E = 29 * 16;
        h.access({A, RefType::Load});
        show(h, "after ref A:");
        h.access({E, RefType::Load});
        show(h, "after ref E:");
        h.access({A, RefType::Load});
        show(h, "after ref A (swap):");
        h.access({E, RefType::Load});
        show(h, "after ref E (swap):");
        std::printf("    off-chip misses: %llu, on-chip swaps: %llu "
                    "(A and E each live in exactly one level)\n",
                    static_cast<unsigned long long>(h.stats().l2Misses),
                    static_cast<unsigned long long>(h.stats().swaps));
    }

    {
        std::printf("\n(b) first-level conflict => inclusion\n");
        std::printf("    A = line 1, B = line 5: same L1 line (1), "
                    "different L2 lines (1, 5)\n");
        TwoLevelHierarchy h(params(64, 1), params(256, 1),
                            TwoLevelPolicy::Exclusive);
        const std::uint32_t A = 1 * 16, B = 5 * 16;
        h.access({A, RefType::Load});
        show(h, "after ref A:");
        h.access({B, RefType::Load});
        show(h, "after ref B:");
        h.access({A, RefType::Load});
        show(h, "after ref A:");
        h.access({B, RefType::Load});
        show(h, "after ref B:");
        std::printf("    off-chip misses: %llu (A keeps its L2 copy: "
                    "inclusion persists, as in the paper)\n",
                    static_cast<unsigned long long>(h.stats().l2Misses));
    }

    {
        std::printf("\ncontrast: conventional (inclusive) hierarchy on "
                    "pattern (a)\n");
        TwoLevelHierarchy h(params(64, 1), params(256, 1),
                            TwoLevelPolicy::Inclusive);
        const std::uint32_t A = 13 * 16, E = 29 * 16;
        for (int i = 0; i < 6; ++i)
            h.access({i % 2 ? E : A, RefType::Load});
        std::printf("    6 alternating refs to A/E -> %llu off-chip "
                    "misses (can hold A or E, never both)\n",
                    static_cast<unsigned long long>(h.stats().l2Misses));
    }
    return 0;
}
