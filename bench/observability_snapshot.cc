/**
 * @file
 * Observability snapshot: runs the reference sweep (every workload,
 * full design space) with the profiler on and emits one JSON
 * document — the sweep shape, the memo-cache hit rates, the full
 * metrics dump, and the per-phase wall-clock — the source of the
 * checked-in BENCH_observability.json. Where BENCH_sweep.json
 * records how fast the sweep is, this records what the sweep *did*,
 * so instrumentation regressions (a counter that stops ticking, a
 * phase that disappears) show up as a diff.
 *
 * Usage: bench_observability_snapshot [--refs=N] [--threads=N]
 */

#include "bench_common.hh"
#include "util/json.hh"
#include "util/metrics.hh"
#include "util/profiler.hh"

using namespace tlc;

int
main(int argc, char **argv)
{
    ArgParser args = bench::parseDriverArgs(argc, argv);
    std::uint64_t refs = static_cast<std::uint64_t>(
        args.getInt("refs",
                    static_cast<std::int64_t>(
                        Workloads::defaultTraceLength() / 4)));

    MetricsRegistry::global().resetAll();
    Profiler::global().reset();
    Profiler::global().setEnabled(true);

    MissRateEvaluator ev(refs);
    Explorer ex(ev);
    SystemAssumptions a;
    std::size_t points = 0;
    FailureReport report;
    for (Benchmark b : Workloads::all())
        points += ex.sweep(b, a, true, true, &report).size();

    MetricsRegistry &m = MetricsRegistry::global();
    auto rate = [&](const char *hits, const char *misses) {
        double h = static_cast<double>(m.counter(hits).value());
        double n = h + static_cast<double>(m.counter(misses).value());
        return n ? h / n : 0.0;
    };

    // The reindent trick run_manifest.cc uses: nested dumps sit at
    // depth one inside this document.
    auto reindent = [](const std::string &block) {
        std::string out;
        for (char c : block) {
            out += c;
            if (c == '\n')
                out += "  ";
        }
        return out;
    };

    std::printf(
        "{\n"
        "  \"benchmark\": \"observability snapshot of the reference "
        "sweep\",\n"
        "  \"workloads\": %zu,\n"
        "  \"design_points\": %zu,\n"
        "  \"failures\": %zu,\n"
        "  \"trace_refs\": %llu,\n"
        "  \"timing_cache_hit_rate\": %s,\n"
        "  \"missrate_cache_hit_rate\": %s,\n"
        "  \"metrics\": %s,\n"
        "  \"phases\": %s\n"
        "}\n",
        Workloads::all().size(), points, report.size(),
        static_cast<unsigned long long>(refs),
        jsonNumber(rate("explore.timing_cache.hits",
                        "explore.timing_cache.misses"))
            .c_str(),
        jsonNumber(rate("explore.missrate_cache.hits",
                        "explore.missrate_cache.misses"))
            .c_str(),
        reindent(m.toJson()).c_str(),
        reindent(Profiler::global().toJson()).c_str());
    return 0;
}
