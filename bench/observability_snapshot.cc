/**
 * @file
 * Observability snapshot: runs the reference sweep (every workload,
 * full design space) with the profiler on and emits one JSON
 * document — the sweep shape, the memo-cache hit rates, the full
 * metrics dump, and the per-phase wall-clock — the source of the
 * checked-in BENCH_observability.json. Where BENCH_sweep.json
 * records how fast the sweep is, this records what the sweep *did*,
 * so instrumentation regressions (a counter that stops ticking, a
 * phase that disappears) show up as a diff.
 *
 * Usage: bench_observability_snapshot [--refs=N] [--threads=N]
 */

#include <map>

#include "bench_common.hh"
#include "core/shard_runner.hh"
#include "util/json.hh"
#include "util/metrics.hh"
#include "util/parallel.hh"
#include "util/profiler.hh"
#include "util/units.hh"

using namespace tlc;

namespace {

/** The 64-point reference grid bench_batch_sweep_timing sweeps. */
std::vector<SystemConfig>
referenceGrid()
{
    std::vector<SystemConfig> configs;
    for (std::uint64_t l1 = 1_KiB; l1 <= 128_KiB; l1 *= 2) {
        SystemConfig c;
        c.l1Bytes = l1;
        c.l2Bytes = 0;
        configs.push_back(c);
        for (std::uint64_t ratio = 2; ratio <= 128; ratio *= 2) {
            c.l2Bytes = l1 * ratio;
            configs.push_back(c);
        }
    }
    return configs;
}

/** Counters a supervised run must roll up identically to the
 *  in-process engine: the simulation- and sweep-level namespaces.
 *  trace.* is excluded because each worker subprocess loads the
 *  trace again (see tests/test_telemetry.cc). */
std::map<std::string, std::uint64_t>
comparableCounters()
{
    std::map<std::string, std::uint64_t> out;
    for (const auto &[name, value] :
         MetricsRegistry::global().counterValues()) {
        if (name.rfind("cache.", 0) == 0 ||
            name.rfind("explore.", 0) == 0)
            out[name] = value;
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args = bench::parseDriverArgs(argc, argv);
    std::uint64_t refs = static_cast<std::uint64_t>(
        args.getInt("refs",
                    static_cast<std::int64_t>(
                        Workloads::defaultTraceLength() / 4)));

    MetricsRegistry::global().resetAll();
    Profiler::global().reset();
    Profiler::global().setEnabled(true);

    MissRateEvaluator ev(refs);
    Explorer ex(ev);
    SystemAssumptions a;
    std::size_t points = 0;
    FailureReport report;
    for (Benchmark b : Workloads::all())
        points += ex.sweep(b, a, true, true, &report).size();

    MetricsRegistry &m = MetricsRegistry::global();
    auto rate = [&](const char *hits, const char *misses) {
        double h = static_cast<double>(m.counter(hits).value());
        double n = h + static_cast<double>(m.counter(misses).value());
        return n ? h / n : 0.0;
    };

    // The reindent trick run_manifest.cc uses: nested dumps sit at
    // depth one inside this document.
    auto reindent = [](const std::string &block) {
        std::string out;
        for (char c : block) {
            out += c;
            if (c == '\n')
                out += "  ";
        }
        return out;
    };

    // Capture the in-process sweep's document pieces before the
    // supervised section below resets the registry.
    const std::string timingRate = jsonNumber(
        rate("explore.timing_cache.hits", "explore.timing_cache.misses"));
    const std::string missrateRate = jsonNumber(
        rate("explore.missrate_cache.hits",
             "explore.missrate_cache.misses"));
    const std::string metricsJson = reindent(m.toJson());
    const std::string phasesJson =
        reindent(Profiler::global().toJson());

    // Cross-process telemetry snapshot (docs/observability.md): run
    // the 64-point reference grid once in-process and once under the
    // shard supervisor and check the streamed metric rollups are
    // identical. One worker thread makes the in-process engine split
    // the grid into the same 32-point batches the shards use, so
    // every comparable counter must agree exactly.
    setParallelWorkerCount(1);
    const std::vector<SystemConfig> grid = referenceGrid();
    SupervisorOptions sopts;
    sopts.pointsPerShard = 32;
    sopts.evaluator.traceRefs = refs;

    m.resetAll();
    {
        MissRateEvaluator gev(refs);
        Explorer gex(gev);
        FailureReport greport;
        gex.evaluateAll(Benchmark::Gcc1, grid, &greport);
    }
    const std::map<std::string, std::uint64_t> reference =
        comparableCounters();

    m.resetAll();
    SupervisionStats sup;
    std::size_t supervisedPoints = 0;
    {
        MissRateEvaluator gev(refs);
        Explorer gex(gev);
        FailureReport greport;
        SupervisedSweep sw =
            supervisedEvaluateAll(gex, Benchmark::Gcc1, grid,
                                  &greport, sopts);
        sup = sw.stats;
        supervisedPoints = sw.points.size();
    }
    const bool rollupsMatch = comparableCounters() == reference;
    std::size_t workerNamespaced = 0;
    for (const auto &[name, value] : m.counterValues()) {
        (void)value;
        if (name.rfind("worker.", 0) == 0)
            ++workerNamespaced;
    }
    setParallelWorkerCount(0);

    std::printf(
        "{\n"
        "  \"benchmark\": \"observability snapshot of the reference "
        "sweep\",\n"
        "  \"workloads\": %zu,\n"
        "  \"design_points\": %zu,\n"
        "  \"failures\": %zu,\n"
        "  \"trace_refs\": %llu,\n"
        "  \"timing_cache_hit_rate\": %s,\n"
        "  \"missrate_cache_hit_rate\": %s,\n"
        "  \"supervised_points\": %zu,\n"
        "  \"supervised_shards\": %llu,\n"
        "  \"supervised_worker_launches\": %llu,\n"
        "  \"telemetry_metric_frames\": %llu,\n"
        "  \"telemetry_phase_frames\": %llu,\n"
        "  \"telemetry_flight_frames\": %llu,\n"
        "  \"worker_namespace_counters\": %zu,\n"
        "  \"rollup_counters_compared\": %zu,\n"
        "  \"rollups_match_inprocess\": %s,\n"
        "  \"metrics\": %s,\n"
        "  \"phases\": %s\n"
        "}\n",
        Workloads::all().size(), points, report.size(),
        static_cast<unsigned long long>(refs), timingRate.c_str(),
        missrateRate.c_str(), supervisedPoints,
        static_cast<unsigned long long>(sup.shards),
        static_cast<unsigned long long>(sup.attempts),
        static_cast<unsigned long long>(sup.metricFrames),
        static_cast<unsigned long long>(sup.phaseFrames),
        static_cast<unsigned long long>(sup.flightFrames),
        workerNamespaced, reference.size(),
        rollupsMatch ? "true" : "false", metricsJson.c_str(),
        phasesJson.c_str());
    return 0;
}
