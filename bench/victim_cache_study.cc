/**
 * @file
 * Extension experiment: victim caches (Jouppi 1990, the paper's
 * reference [4]) and the §8 degenerate case.
 *
 * Section 8 notes that a two-level exclusive configuration with
 * y < x "becomes a shared direct-mapped victim cache". This driver
 * (a) sweeps the classic fully-associative victim buffer size and
 * reports how many L1 conflict misses it recovers, and (b) checks
 * the degenerate-case equivalence: an exclusive L2 smaller than L1
 * behaves like a victim cache of the same capacity.
 */

#include <iostream>

#include "area/area_model.hh"
#include "bench_common.hh"
#include "cache/single_level.hh"
#include "cache/victim_cache.hh"
#include "util/units.hh"

using namespace tlc;

int
main()
{
    std::uint64_t refs = Workloads::defaultTraceLength() / 4;

    bench::banner("Victim caches: miss reduction vs buffer size "
                  "(4KB direct-mapped L1s)");
    Table t({"workload", "no_buffer", "4_lines", "16_lines", "64_lines",
             "recovered_pct_at_16"});
    for (Benchmark b : Workloads::all()) {
        TraceBuffer trace = Workloads::generate(b, refs);
        CacheParams l1;
        l1.sizeBytes = 4_KiB;
        l1.lineBytes = 16;
        l1.assoc = 1;

        auto offchip = [&](unsigned lines) -> double {
            if (lines == 0) {
                SingleLevelHierarchy h(l1);
                h.simulate(trace, refs / 10);
                return h.stats().globalMissRate();
            }
            VictimCacheHierarchy h(l1, lines);
            h.simulate(trace, refs / 10);
            return h.stats().globalMissRate();
        };
        double m0 = offchip(0);
        double m4 = offchip(4);
        double m16 = offchip(16);
        double m64 = offchip(64);
        t.beginRow();
        t.cell(Workloads::info(b).name);
        t.cell(m0, 4);
        t.cell(m4, 4);
        t.cell(m16, 4);
        t.cell(m64, 4);
        t.cell(m0 > 0 ? 100.0 * (m0 - m16) / m0 : 0.0, 1);
    }
    t.printAscii(std::cout);

    bench::banner("Section 8 degenerate case: exclusive L2 with "
                  "y < x vs a victim buffer of equal capacity "
                  "(gcc1, 4KB L1s)");
    {
        TraceBuffer trace = Workloads::generate(Benchmark::Gcc1, refs);
        CacheParams l1;
        l1.sizeBytes = 4_KiB;
        l1.lineBytes = 16;
        l1.assoc = 1;

        Table d({"organization", "l2_or_buffer", "global_missrate",
                 "onchip_recovery"});
        for (std::uint64_t cap : {512u, 1024u, 2048u}) {
            // (a) exclusive two-level with tiny fully-assoc-ish L2.
            CacheParams l2;
            l2.sizeBytes = cap;
            l2.lineBytes = 16;
            l2.assoc = 4;
            l2.repl = ReplPolicy::Random;
            TwoLevelHierarchy excl(l1, l2, TwoLevelPolicy::Exclusive);
            excl.simulate(trace, refs / 10);

            // (b) classic victim buffer of the same line count.
            VictimCacheHierarchy vc(l1,
                                    static_cast<std::uint32_t>(cap / 16));
            vc.simulate(trace, refs / 10);

            d.beginRow();
            d.cell("exclusive L2 (" + formatSize(cap) + ")");
            d.cell(formatSize(cap));
            d.cell(excl.stats().globalMissRate(), 4);
            d.cell(excl.stats().l2Hits);
            d.beginRow();
            d.cell("victim buffer (" + formatSize(cap) + ")");
            d.cell(formatSize(cap));
            d.cell(vc.stats().globalMissRate(), 4);
            d.cell(vc.stats().l2Hits);
        }
        d.printAscii(std::cout);
        std::printf("\nExpectation: the two organizations recover a "
                    "similar number of conflict misses on-chip "
                    "(the paper's y < x remark).\n");
    }

    bench::banner("Victim buffer silicon cost (CAM-tagged, priced by "
                  "the timing/area models)");
    {
        AccessTimeModel timing;
        AreaModel area;
        Table c({"buffer_lines", "access_ns", "cycle_ns", "area_rbe",
                 "vs_4K_L1_area_pct"});
        SramGeometry l1g{4_KiB, 16, 1, 32, 64};
        TimingResult l1t = timing.optimize(l1g);
        double l1_area = area.area(l1g, l1t.dataOrg, l1t.tagOrg);
        for (std::uint32_t lines : {4u, 16u, 64u}) {
            SramGeometry g;
            g.sizeBytes = static_cast<std::uint64_t>(lines) * 16;
            g.blockBytes = 16;
            g.assoc = lines; // fully associative -> CAM path
            TimingResult t = timing.optimize(g);
            double a = area.area(g, t.dataOrg, t.tagOrg);
            c.beginRow();
            c.cell(lines);
            c.cell(t.accessNs, 3);
            c.cell(t.cycleNs, 3);
            c.cell(a, 0);
            c.cell(100.0 * a / l1_area, 1);
        }
        c.printAscii(std::cout);
        std::printf("\nA 16-line buffer costs a few percent of the L1 "
                    "it protects and is faster than any L2 — "
                    "Jouppi's original argument.\n");
    }
    return 0;
}
