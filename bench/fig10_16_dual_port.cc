/**
 * @file
 * Figures 10-16: dual-ported first-level caches (2x cell area, 2x
 * instruction issue rate), 50 ns off-chip, 4-way L2.
 *
 * For each of the seven workloads the paper plots three envelopes:
 *   dotted: 1-level systems with the base (single-ported) cell
 *   dashed: 1-level systems with the dual-ported cell
 *   solid : 2-level systems (dual-ported L1, single-ported L2)
 * The crossover between dotted and dashed (50k-400k rbe in the
 * paper) and the stronger case for two levels are reported.
 */

#include <cmath>
#include <iostream>

#include "bench_common.hh"

using namespace tlc;

int
main(int argc, char **argv)
{
    bench::parseDriverArgs(argc, argv); // --threads=N
    MissRateEvaluator ev;
    Explorer ex(ev);

    SystemAssumptions base;
    base.offchipNs = 50;
    base.l2Assoc = 4;
    base.policy = TwoLevelPolicy::Inclusive;
    SystemAssumptions dual = base;
    dual.dualPortedL1 = true;

    bench::banner("Figures 10-16: 2X L1 area, 2X issue rate, 50ns, "
                  "4-way L2");
    for (Benchmark b : Workloads::all()) {
        const char *name = Workloads::info(b).name;
        Envelope e_base =
            Explorer::envelopeOf(ex.sweep(b, base, true, false));
        Envelope e_dual =
            Explorer::envelopeOf(ex.sweep(b, dual, true, false));
        Envelope e_two = Explorer::envelopeOf(ex.sweep(b, dual));

        std::printf("\n-- %s --\n", name);
        std::printf("1-level base system (dotted):\n");
        bench::printEnvelope(name, e_base);
        std::printf("1-level dual-ported (dashed):\n");
        bench::printEnvelope(name, e_dual);
        std::printf("best 2-level config (solid):\n");
        bench::printEnvelope(name, e_two);

        // Locate the dotted/dashed crossover on a log-area grid.
        double cross = 0;
        for (double a = 3e4; a <= 6e6; a *= 1.1) {
            double tb = e_base.bestTpiWithin(a);
            double td = e_dual.bestTpiWithin(a);
            if (!std::isinf(tb) && !std::isinf(td) && td < tb) {
                cross = a;
                break;
            }
        }
        if (cross > 0) {
            std::printf("%s: dual-ported 1-level beats base 1-level "
                        "from ~%.0f rbe (paper: crossover at "
                        "50k-400k rbe)\n", name, cross);
        } else {
            std::printf("%s: no crossover in range\n", name);
        }
        std::printf("%s: mean gap 1-level-dual above 2-level: %.3f ns "
                    "(paper: two levels matter more with dual-ported "
                    "L1)\n",
                    name, e_dual.meanGapAgainst(e_two));
        if (b == Benchmark::Gcc1) {
            std::printf("\n");
            bench::plotEnvelopes("Figure 10: gcc1, dual-ported study",
                                 {{"1-level base", e_base},
                                  {"1-level dual-ported", e_dual},
                                  {"best 2-level", e_two}});
        }
    }
    return 0;
}
