/**
 * @file
 * Extension experiment: the board-level cache behind the paper's
 * 50 ns assumption, and the §8 closing remark about maintaining
 * inclusion with a third level.
 *
 * (a) Measures, per workload, how often an on-chip miss actually
 *     hits a 1 MB board cache — justifying modelling "system with a
 *     board cache" as a flat 50 ns and "without" as 200 ns (§2.1,
 *     §7) — and the effective off-chip service time in between.
 * (b) Prices the cost of Baer-Wang inclusion maintenance (extra
 *     on-chip misses from back-invalidation) under both inclusive
 *     and exclusive on-chip policies.
 */

#include <iostream>
#include <memory>

#include "bench_common.hh"
#include "cache/board_system.hh"
#include "util/units.hh"

using namespace tlc;

namespace {

std::unique_ptr<Hierarchy>
makeChip(TwoLevelPolicy pol)
{
    CacheParams l1;
    l1.sizeBytes = 8_KiB;
    l1.lineBytes = 16;
    l1.assoc = 1;
    CacheParams l2;
    l2.sizeBytes = 64_KiB;
    l2.lineBytes = 16;
    l2.assoc = 4;
    l2.repl = ReplPolicy::Random;
    return std::make_unique<TwoLevelHierarchy>(l1, l2, pol);
}

} // namespace

int
main()
{
    std::uint64_t refs = Workloads::defaultTraceLength() / 2;
    const double t_board = 50.0, t_mem = 200.0;

    bench::banner("Board cache (1MB DM, 50ns) behind an 8:64 chip: "
                  "effective off-chip service time");
    Table t({"workload", "chip_offchip_per_1k", "board_hitrate",
             "effective_offchip_ns"});
    for (Benchmark b : Workloads::all()) {
        TraceBuffer trace = Workloads::generate(b, refs);
        CacheParams board;
        board.sizeBytes = 1_MiB;
        board.lineBytes = 16;
        board.assoc = 1;
        BoardLevelSystem sys(makeChip(TwoLevelPolicy::Inclusive), board,
                             true);
        sys.simulate(trace, refs / 10);
        const BoardStats &bs = sys.boardStats();
        double hits = static_cast<double>(bs.l3Hits);
        double total = hits + static_cast<double>(bs.l3Misses);
        double hitrate = total > 0 ? hits / total : 0.0;
        t.beginRow();
        t.cell(Workloads::info(b).name);
        t.cell(1000.0 * total /
               static_cast<double>(sys.stats().totalRefs()), 2);
        t.cell(hitrate, 3);
        t.cell(hitrate * t_board + (1 - hitrate) * t_mem, 1);
    }
    t.printAscii(std::cout);
    std::printf("\nReading: with a board cache much larger than the "
                "chip, most chip misses are board hits, supporting "
                "the paper's flat 50ns model; workloads with giant "
                "footprints (tomcatv) fall between the 50ns and "
                "200ns corners.\n");

    bench::banner("Cost of Baer-Wang inclusion maintenance "
                  "(back-invalidation; 8:64 chip, 256K board)");
    Table t2({"workload", "policy", "backinvals_per_1k",
              "chip_misses_no_incl", "chip_misses_incl",
              "added_misses_pct"});
    for (Benchmark b :
         {Benchmark::Gcc1, Benchmark::Li, Benchmark::Tomcatv}) {
        TraceBuffer trace = Workloads::generate(b, refs);
        for (TwoLevelPolicy pol :
             {TwoLevelPolicy::Inclusive, TwoLevelPolicy::Exclusive}) {
            CacheParams board;
            board.sizeBytes = 256_KiB; // small board: evictions matter
            board.lineBytes = 16;
            board.assoc = 2;
            auto run = [&](bool incl) {
                BoardLevelSystem sys(makeChip(pol), board, incl);
                sys.simulate(trace, refs / 10);
                return std::pair<std::uint64_t, std::uint64_t>(
                    sys.stats().l1Misses(),
                    sys.boardStats().backInvalidations);
            };
            auto [m_no, bi_no] = run(false);
            auto [m_yes, bi_yes] = run(true);
            (void)bi_no;
            t2.beginRow();
            t2.cell(Workloads::info(b).name);
            t2.cell(twoLevelPolicyName(pol));
            t2.cell(1000.0 * static_cast<double>(bi_yes) /
                        static_cast<double>(refs - refs / 10), 2);
            t2.cell(m_no);
            t2.cell(m_yes);
            t2.cell(100.0 *
                        (static_cast<double>(m_yes) -
                         static_cast<double>(m_no)) /
                        static_cast<double>(m_no), 2);
        }
    }
    t2.printAscii(std::cout);
    std::printf("\nReading: inclusion (needed for multiprocessor "
                "snooping, paper Section 8) costs a small number of "
                "extra on-chip misses even under the exclusive "
                "policy — the property can be maintained, as the "
                "paper asserts.\n");
    return 0;
}
