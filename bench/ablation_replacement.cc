/**
 * @file
 * Ablation: L2 replacement policy. The paper uses pseudo-random
 * replacement for its set-associative L2; this driver quantifies
 * what LRU or FIFO would have changed, to justify that the choice
 * does not drive the conclusions.
 */

#include <iostream>

#include "bench_common.hh"
#include "util/units.hh"

using namespace tlc;

int
main()
{
    MissRateEvaluator ev;
    Explorer ex(ev);

    bench::banner("Ablation: L2 replacement policy (8:64, 4-way, 50ns, "
                  "inclusive; global miss rate)");
    Table t({"workload", "random", "lru", "fifo", "lru_vs_random_pct"});
    for (Benchmark b : Workloads::all()) {
        auto miss = [&](ReplPolicy r) {
            SystemConfig c;
            c.l1Bytes = 8_KiB;
            c.l2Bytes = 64_KiB;
            c.assume.l2Repl = r;
            return ev.tryMissStats(b, c).value().globalMissRate();
        };
        double rnd = miss(ReplPolicy::Random);
        double lru = miss(ReplPolicy::LRU);
        double fifo = miss(ReplPolicy::FIFO);
        t.beginRow();
        t.cell(Workloads::info(b).name);
        t.cell(rnd, 5);
        t.cell(lru, 5);
        t.cell(fifo, 5);
        t.cell(rnd > 0 ? 100.0 * (rnd - lru) / rnd : 0.0, 1);
    }
    t.printAscii(std::cout);
    std::printf("\nExpectation: differences are small at 4-way (the "
                "paper's pseudo-random choice is benign).\n");
    return 0;
}
