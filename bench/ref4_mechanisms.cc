/**
 * @file
 * Extension experiment: the reference-[4] mechanism family side by
 * side. Jouppi (1990) proposed victim caches (conflict misses) and
 * stream buffers (sequential misses); this paper's §8 adds the
 * exclusive L2 (conflict + capacity, at L2 scale). The driver runs
 * all three against the same 4 KB L1 baseline and shows which
 * workloads each mechanism rescues — conflict-heavy integer codes
 * vs streaming numeric codes.
 */

#include <iostream>

#include "bench_common.hh"
#include "cache/single_level.hh"
#include "cache/stream_buffer.hh"
#include "cache/victim_cache.hh"
#include "util/units.hh"

using namespace tlc;

int
main()
{
    std::uint64_t refs = Workloads::defaultTraceLength() / 4;

    bench::banner("Reference-[4] mechanisms vs exclusive L2 "
                  "(4KB DM L1s; off-chip misses per 1000 refs)");
    Table t({"workload", "baseline", "victim_16line", "stream_8x4",
             "excl_L2_16K", "best_mechanism"});
    for (Benchmark b : Workloads::all()) {
        TraceBuffer trace = Workloads::generate(b, refs);
        CacheParams l1;
        l1.sizeBytes = 4_KiB;
        l1.lineBytes = 16;
        l1.assoc = 1;
        std::uint64_t warm = refs / 10;

        auto per1k = [&](const HierarchyStats &s) {
            return 1000.0 * static_cast<double>(s.l2Misses) /
                static_cast<double>(s.totalRefs());
        };

        SingleLevelHierarchy base(l1);
        base.simulate(trace, warm);

        VictimCacheHierarchy vc(l1, 16);
        vc.simulate(trace, warm);

        StreamBufferHierarchy sb(l1, 8, 4);
        sb.simulate(trace, warm);

        CacheParams l2;
        l2.sizeBytes = 16_KiB;
        l2.lineBytes = 16;
        l2.assoc = 4;
        l2.repl = ReplPolicy::Random;
        TwoLevelHierarchy ex(l1, l2, TwoLevelPolicy::Exclusive);
        ex.simulate(trace, warm);

        double mb = per1k(base.stats());
        double mv = per1k(vc.stats());
        double ms = per1k(sb.stats());
        double me = per1k(ex.stats());
        const char *best = "victim";
        double m = mv;
        if (ms < m) {
            m = ms;
            best = "stream";
        }
        if (me < m) {
            m = me;
            best = "excl-L2";
        }
        t.beginRow();
        t.cell(Workloads::info(b).name);
        t.cell(mb, 1);
        t.cell(mv, 1);
        t.cell(ms, 1);
        t.cell(me, 1);
        t.cell(best);
    }
    t.printAscii(std::cout);
    std::printf("\nReading: stream buffers excel at sequential misses "
                "(instruction fetch and the streaming numeric codes), "
                "victim caches only recover the conflict component, "
                "and the exclusive L2 adds capacity on top of its "
                "associativity effect. The mechanisms target disjoint "
                "miss classes (see bench_three_c_analysis) and are "
                "complementary, as Jouppi (1990) and this paper's "
                "Section 8 argue.\n");
    return 0;
}
