/**
 * @file
 * Ablation: two-level content-management policy. Compares the three
 * policies this library implements — mostly-inclusive (the paper's
 * baseline), strict-inclusive (Baer-Wang back-invalidation, the
 * multiprocessor-friendly variant the paper mentions at the end of
 * Section 8), and exclusive (the contribution) — at matched
 * configurations, isolating what each content rule costs or buys.
 */

#include <iostream>

#include "bench_common.hh"
#include "util/units.hh"

using namespace tlc;

int
main()
{
    MissRateEvaluator ev;
    Explorer ex(ev);

    bench::banner("Ablation: two-level content policy "
                  "(50ns, 4-way L2, global miss rate)");
    const std::pair<std::uint64_t, std::uint64_t> configs[] = {
        {4_KiB, 16_KiB},  // L2 only 2x the L1 pair: duplication hurts
        {8_KiB, 64_KiB},  // the paper's sweet-spot shape
        {32_KiB, 256_KiB} // large system
    };
    for (auto [l1, l2] : configs) {
        Table t({"workload", "inclusive", "strict_incl", "exclusive",
                 "excl_gain_pct"});
        for (Benchmark b : Workloads::all()) {
            auto miss = [&](TwoLevelPolicy p) {
                SystemConfig c;
                c.l1Bytes = l1;
                c.l2Bytes = l2;
                c.assume.policy = p;
                return ev.tryMissStats(b, c).value().globalMissRate();
            };
            double inc = miss(TwoLevelPolicy::Inclusive);
            double strict = miss(TwoLevelPolicy::StrictInclusive);
            double excl = miss(TwoLevelPolicy::Exclusive);
            t.beginRow();
            t.cell(Workloads::info(b).name);
            t.cell(inc, 5);
            t.cell(strict, 5);
            t.cell(excl, 5);
            t.cell(inc > 0 ? 100.0 * (inc - excl) / inc : 0.0, 1);
        }
        std::printf("\nconfiguration %s:%s\n",
                    formatSize(l1).c_str(), formatSize(l2).c_str());
        t.printAscii(std::cout);
    }
    std::printf("\nExpectation: exclusive <= inclusive everywhere; the "
                "gain shrinks as L2/L1 grows (duplication matters "
                "less); strict inclusion is never better than "
                "mostly-inclusive.\n");
    return 0;
}
