/**
 * @file
 * Before/after timing of the parallel sweep engine: prices the full
 * design space (all workloads, single- and two-level) once serially
 * and once with the parallel worker team, and emits JSON — the
 * source of the checked-in BENCH_sweep.json. Traces are generated
 * outside the timed region and each mode uses a fresh evaluator, so
 * the comparison isolates design-point pricing from trace I/O and
 * memoization crosstalk.
 *
 * Usage: bench_sweep_timing [--threads=4] [--refs=N]
 */

#include <chrono>
#include <thread>

#include "bench_common.hh"

using namespace tlc;

namespace {

/** Wall-clock seconds of one full sweep with @p workers threads. */
double
timedSweep(unsigned workers, std::uint64_t refs, std::size_t *points)
{
    MissRateEvaluator ev(refs);
    Explorer ex(ev);
    SystemAssumptions a;
    for (Benchmark b : Workloads::all())
        (void)ev.tryTrace(b); // pre-generate outside the timed region

    setParallelWorkerCount(workers);
    auto t0 = std::chrono::steady_clock::now();
    std::size_t n = 0;
    for (Benchmark b : Workloads::all())
        n += ex.sweep(b, a).size();
    auto t1 = std::chrono::steady_clock::now();
    setParallelWorkerCount(0);

    *points = n;
    return std::chrono::duration<double>(t1 - t0).count();
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args(argc, argv);
    applyStandardFlags(args);
    unsigned threads =
        static_cast<unsigned>(args.getInt("threads", 4));
    std::uint64_t refs = static_cast<std::uint64_t>(
        args.getInt("refs",
                    static_cast<std::int64_t>(
                        Workloads::defaultTraceLength() / 4)));

    std::size_t serial_points = 0, parallel_points = 0;
    double serial_s = timedSweep(1, refs, &serial_points);
    double parallel_s = timedSweep(threads, refs, &parallel_points);

    unsigned hw = std::thread::hardware_concurrency();
    std::printf("{\n"
                "  \"benchmark\": \"full design-space sweep\",\n"
                "  \"workloads\": %zu,\n"
                "  \"design_points\": %zu,\n"
                "  \"trace_refs\": %llu,\n"
                "  \"hardware_concurrency\": %u,\n"
                "  \"serial_seconds\": %.3f,\n"
                "  \"parallel_threads\": %u,\n"
                "  \"parallel_seconds\": %.3f,\n"
                "  \"speedup\": %.2f%s\n"
                "}\n",
                Workloads::all().size(), serial_points,
                static_cast<unsigned long long>(refs), hw, serial_s,
                threads, parallel_s, serial_s / parallel_s,
                hw < threads
                    ? ",\n  \"note\": \"speedup is bounded by "
                      "hardware_concurrency; rerun on a host with >= "
                      "parallel_threads cores for the scaling figure\""
                    : "");

    if (serial_points != parallel_points)
        fatal("point counts diverged: serial %zu vs parallel %zu",
              serial_points, parallel_points);
    return 0;
}
