/**
 * @file
 * Figures 3 and 4: single-level caching performance, 50 ns off-chip
 * service. TPI vs chip area for all seven workloads (Fig. 3: gcc1,
 * espresso, doduc, fpppp; Fig. 4: li, eqntott, tomcatv), plus the
 * Section 3 miss-rate quotes.
 */

#include <iostream>

#include "bench_common.hh"
#include "util/units.hh"

using namespace tlc;

int
main(int argc, char **argv)
{
    bench::parseDriverArgs(argc, argv); // --threads=N
    MissRateEvaluator ev;
    Explorer ex(ev);
    SystemAssumptions a; // 50 ns, single level only below

    bench::banner("Figures 3-4: single-level TPI vs area, 50ns off-chip");
    for (Benchmark b : Workloads::all()) {
        auto points = ex.sweep(b, a, true, false);
        bench::printPoints(Workloads::info(b).name, points);

        const DesignPoint *best = &points.front();
        for (const auto &p : points)
            if (p.tpi.tpi < best->tpi.tpi)
                best = &p;
        std::printf("minimum TPI: %.3f ns at %s (paper: minima between "
                    "8K and 128K)\n\n",
                    best->tpi.tpi, best->config.label().c_str());
    }

    bench::banner("Section 3 miss-rate quotes at 32KB");
    Table t({"workload", "measured_32K", "paper_32K"});
    auto miss32 = [&](Benchmark b) {
        SystemConfig c;
        c.l1Bytes = 32_KiB;
        c.l2Bytes = 0;
        c.assume = a;
        return ev.tryMissStats(b, c).value().l1MissRate();
    };
    t.beginRow();
    t.cell("espresso");
    t.cell(miss32(Benchmark::Espresso), 4);
    t.cell("0.0100");
    t.beginRow();
    t.cell("eqntott");
    t.cell(miss32(Benchmark::Eqntott), 4);
    t.cell("0.0149");
    t.beginRow();
    t.cell("tomcatv");
    t.cell(miss32(Benchmark::Tomcatv), 4);
    t.cell("0.109");
    t.printAscii(std::cout);
    return 0;
}
