/**
 * @file
 * Figure 9: gcc1 with a direct-mapped second-level cache, 50 ns
 * off-chip. Compared against the 4-way L2 of Figure 5: the paper
 * finds 4-way slightly better because the extra L2 access time
 * usually costs no extra CPU cycles after rounding, while the miss
 * rate drops.
 */

#include <iostream>

#include "bench_common.hh"

using namespace tlc;

int
main(int argc, char **argv)
{
    bench::parseDriverArgs(argc, argv); // --threads=N
    MissRateEvaluator ev;
    Explorer ex(ev);

    SystemAssumptions dm;
    dm.offchipNs = 50;
    dm.l2Assoc = 1;
    dm.policy = TwoLevelPolicy::Inclusive;

    bench::banner("Figure 9: gcc1, 50ns off-chip, L2 direct-mapped");
    auto points = ex.sweep(Benchmark::Gcc1, dm);
    bench::printPoints("gcc1-dmL2", points);
    Envelope env_dm = Explorer::envelopeOf(points);
    std::printf("\nbest 2-level envelope (direct-mapped L2):\n");
    bench::printEnvelope("gcc1-dmL2", env_dm);

    SystemAssumptions sa = dm;
    sa.l2Assoc = 4;
    Envelope env_sa =
        Explorer::envelopeOf(ex.sweep(Benchmark::Gcc1, sa));
    std::printf("\ncomparison with Figure 5 (4-way L2): mean gap "
                "DM-above-4way = %.3f ns\n"
                "(paper Section 5: 4-way slightly better for most "
                "benchmarks)\n",
                env_dm.meanGapAgainst(env_sa));
    return 0;
}
