/**
 * @file
 * Google-benchmark microbenchmarks: throughput of the simulator's
 * hot paths (cache access, hierarchy access, trace generation,
 * timing-model optimization). These guard the "tens of millions of
 * references per second" property that makes the full figure sweeps
 * tractable.
 */

#include <benchmark/benchmark.h>

#include "cache/single_level.hh"
#include "cache/stream_buffer.hh"
#include "cache/three_c.hh"
#include "cache/two_level.hh"
#include "core/tpi.hh"
#include "timing/access_time.hh"
#include "trace/workload.hh"
#include "util/random.hh"

using namespace tlc;

namespace {

CacheParams
params(std::uint64_t size, std::uint32_t assoc)
{
    CacheParams p;
    p.sizeBytes = size;
    p.lineBytes = 16;
    p.assoc = assoc;
    return p;
}

const TraceBuffer &
sharedTrace()
{
    static const TraceBuffer t = Workloads::generate(Benchmark::Gcc1,
                                                     500000);
    return t;
}

} // namespace

static void
BM_CacheAccessDirectMapped(benchmark::State &state)
{
    Cache c(params(static_cast<std::uint64_t>(state.range(0)), 1));
    Pcg32 rng(1);
    for (auto _ : state) {
        std::uint64_t addr = rng.nextBounded(1 << 20);
        if (!c.lookupAndTouch(addr))
            c.fill(addr);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheAccessDirectMapped)->Arg(8192)->Arg(262144);

static void
BM_CacheAccessFourWay(benchmark::State &state)
{
    CacheParams p = params(static_cast<std::uint64_t>(state.range(0)), 4);
    p.repl = ReplPolicy::Random;
    Cache c(p);
    Pcg32 rng(1);
    for (auto _ : state) {
        std::uint64_t addr = rng.nextBounded(1 << 20);
        if (!c.lookupAndTouch(addr))
            c.fill(addr);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheAccessFourWay)->Arg(65536)->Arg(262144);

static void
BM_SingleLevelTrace(benchmark::State &state)
{
    const TraceBuffer &t = sharedTrace();
    for (auto _ : state) {
        SingleLevelHierarchy h(params(8192, 1));
        h.simulate(t);
        benchmark::DoNotOptimize(h.stats().l1Misses());
    }
    state.SetItemsProcessed(state.iterations() * t.size());
}
BENCHMARK(BM_SingleLevelTrace);

static void
BM_TwoLevelInclusiveTrace(benchmark::State &state)
{
    const TraceBuffer &t = sharedTrace();
    for (auto _ : state) {
        TwoLevelHierarchy h(params(8192, 1), params(65536, 4),
                            TwoLevelPolicy::Inclusive);
        h.simulate(t);
        benchmark::DoNotOptimize(h.stats().l2Misses);
    }
    state.SetItemsProcessed(state.iterations() * t.size());
}
BENCHMARK(BM_TwoLevelInclusiveTrace);

static void
BM_TwoLevelExclusiveTrace(benchmark::State &state)
{
    const TraceBuffer &t = sharedTrace();
    for (auto _ : state) {
        TwoLevelHierarchy h(params(8192, 1), params(65536, 4),
                            TwoLevelPolicy::Exclusive);
        h.simulate(t);
        benchmark::DoNotOptimize(h.stats().l2Misses);
    }
    state.SetItemsProcessed(state.iterations() * t.size());
}
BENCHMARK(BM_TwoLevelExclusiveTrace);

static void
BM_StreamBufferTrace(benchmark::State &state)
{
    const TraceBuffer &t = sharedTrace();
    for (auto _ : state) {
        StreamBufferHierarchy h(params(8192, 1), 8, 4);
        h.simulate(t);
        benchmark::DoNotOptimize(h.stats().l2Misses);
    }
    state.SetItemsProcessed(state.iterations() * t.size());
}
BENCHMARK(BM_StreamBufferTrace);

static void
BM_ThreeCClassification(benchmark::State &state)
{
    const TraceBuffer &t = sharedTrace();
    for (auto _ : state) {
        ThreeCAnalyzer a(params(8192, 1));
        for (const auto &rec : t)
            a.access(rec.addr);
        benchmark::DoNotOptimize(a.stats().conflict);
    }
    state.SetItemsProcessed(state.iterations() * t.size());
}
BENCHMARK(BM_ThreeCClassification);

static void
BM_CamTimingOptimize(benchmark::State &state)
{
    AccessTimeModel m;
    for (auto _ : state) {
        SramGeometry g{1024, 16, 64, 32, 64}; // 64-entry FA buffer
        benchmark::DoNotOptimize(m.optimize(g).cycleNs);
    }
}
BENCHMARK(BM_CamTimingOptimize);

static void
BM_TraceGeneration(benchmark::State &state)
{
    for (auto _ : state) {
        TraceBuffer t = Workloads::generate(Benchmark::Espresso, 100000);
        benchmark::DoNotOptimize(t.totalRefs());
    }
    state.SetItemsProcessed(state.iterations() * 100000);
}
BENCHMARK(BM_TraceGeneration);

static void
BM_TimingOptimize(benchmark::State &state)
{
    AccessTimeModel m;
    for (auto _ : state) {
        SramGeometry g{65536, 16, 4, 32, 64};
        benchmark::DoNotOptimize(m.optimize(g).cycleNs);
    }
}
BENCHMARK(BM_TimingOptimize);

static void
BM_TpiComputation(benchmark::State &state)
{
    HierarchyStats s;
    s.instrRefs = 1000000;
    s.dataRefs = 400000;
    s.l2Hits = 20000;
    s.l2Misses = 3000;
    TpiParams p;
    p.l1CycleNs = 2.5;
    p.l2CycleNsRaw = 3.4;
    p.offchipNs = 50;
    p.hasL2 = true;
    for (auto _ : state)
        benchmark::DoNotOptimize(computeTpi(s, p).tpi);
}
BENCHMARK(BM_TpiComputation);

BENCHMARK_MAIN();
