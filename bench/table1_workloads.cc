/**
 * @file
 * Table 1: per-benchmark instruction/data/total reference counts.
 *
 * Prints the paper's counts alongside this reproduction's synthetic
 * trace lengths; the instruction:data ratio (the property the
 * models preserve) is shown for both.
 */

#include <cstdio>
#include <iostream>

#include "bench_common.hh"
#include "util/table.hh"

using namespace tlc;

int
main()
{
    bench::banner("Table 1: test program references");
    std::uint64_t refs = Workloads::defaultTraceLength();

    Table t({"program", "paper_instr_M", "paper_data_M", "paper_total_M",
             "paper_d_per_i", "model_instr", "model_data", "model_total",
             "model_d_per_i"});
    for (Benchmark b : Workloads::all()) {
        const WorkloadInfo &wi = Workloads::info(b);
        TraceBuffer buf = Workloads::generate(b, refs);
        t.beginRow();
        t.cell(wi.name);
        t.cell(wi.paperInstrRefsM, 1);
        t.cell(wi.paperDataRefsM, 1);
        t.cell(wi.paperTotalRefsM(), 1);
        t.cell(wi.dataPerInstr(), 3);
        t.cell(buf.instrRefs());
        t.cell(buf.dataRefs());
        t.cell(buf.totalRefs());
        t.cell(static_cast<double>(buf.dataRefs()) /
               static_cast<double>(buf.instrRefs()), 3);
    }
    t.printAscii(std::cout);
    std::printf("\nNote: model traces are scaled to %llu refs each "
                "(set TLC_TRACE_SCALE to lengthen); the paper's "
                "instruction:data ratios are preserved.\n",
                static_cast<unsigned long long>(refs));
    return 0;
}
