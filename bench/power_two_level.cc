/**
 * @file
 * Extension experiment: per-reference energy of single- vs two-level
 * configurations (the paper's fifth advantage, §1: "a chip with a
 * two-level cache will usually use less power than one with a
 * single-level organization (assuming the area devoted to the cache
 * is the same)").
 *
 * For each workload, pairs a single-level configuration with a
 * two-level configuration of comparable total area and compares the
 * measured energy per memory reference (on-chip switching plus
 * off-chip accesses).
 */

#include <iostream>

#include "bench_common.hh"
#include "power/energy_model.hh"
#include "util/units.hh"

using namespace tlc;

int
main()
{
    MissRateEvaluator ev;
    Explorer ex(ev);
    EnergyModel em;

    auto array_energy = [&](std::uint64_t size, std::uint32_t assoc) {
        const TimingResult &t = ex.timingOf(size, assoc, 16);
        SramGeometry g{size, 16, assoc, 32, 64};
        return em.accessEnergy(g, t.dataOrg, t.tagOrg).total();
    };

    bench::banner("Energy per reference: single-level vs two-level at "
                  "comparable area (eu = relative energy units)");

    struct Pairing
    {
        std::uint64_t single_l1;
        std::uint64_t two_l1;
        std::uint64_t two_l2;
    };
    // Areas are matched within ~15% by construction (L1 pair + L2
    // vs bigger L1 pair).
    const Pairing pairings[] = {
        {32_KiB, 8_KiB, 64_KiB},
        {64_KiB, 16_KiB, 128_KiB},
        {128_KiB, 32_KiB, 256_KiB},
    };

    for (const Pairing &pr : pairings) {
        SystemConfig single;
        single.l1Bytes = pr.single_l1;
        SystemConfig two;
        two.l1Bytes = pr.two_l1;
        two.l2Bytes = pr.two_l2;

        std::printf("\npairing: %s (%.0f rbe) vs %s (%.0f rbe)\n",
                    single.label().c_str(), ex.areaOf(single),
                    two.label().c_str(), ex.areaOf(two));
        Table t({"workload", "single_eu_per_ref", "two_level_eu_per_ref",
                 "saving_pct"});
        for (Benchmark b : Workloads::all()) {
            HierarchyStats ss = ev.tryMissStats(b, single).value();
            HierarchyStats ts = ev.tryMissStats(b, two).value();
            double e_single = em.energyPerReference(
                ss, array_energy(pr.single_l1, 1), 0.0);
            double e_two = em.energyPerReference(
                ts, array_energy(pr.two_l1, 1),
                array_energy(pr.two_l2, 4));
            t.beginRow();
            t.cell(Workloads::info(b).name);
            t.cell(e_single, 1);
            t.cell(e_two, 1);
            t.cell(100.0 * (e_single - e_two) / e_single, 1);
        }
        t.printAscii(std::cout);
    }
    std::printf("\nExpectation (paper Section 1, advantage five): the "
                "two-level configuration usually wins — most accesses "
                "touch only the small L1's short word/bitlines.\n");
    return 0;
}
