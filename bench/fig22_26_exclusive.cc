/**
 * @file
 * Figures 22-26: two-level exclusive caching, 50 ns off-chip.
 *
 *   Fig. 22: gcc1, exclusive direct-mapped L2
 *   Fig. 23: gcc1, exclusive 4-way L2
 *   Figs. 24-26: the other six workloads, exclusive 4-way L2
 *
 * Paper claims checked at the bottom: exclusive improves on the
 * baseline; DM-exclusive is about as good as 4-way-inclusive;
 * combining exclusivity with 4-way associativity is best.
 */

#include <iostream>

#include "bench_common.hh"

using namespace tlc;

namespace {

SystemAssumptions
assume(std::uint32_t assoc, TwoLevelPolicy policy)
{
    SystemAssumptions a;
    a.offchipNs = 50;
    a.l2Assoc = assoc;
    a.policy = policy;
    return a;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::parseDriverArgs(argc, argv); // --threads=N
    MissRateEvaluator ev;
    Explorer ex(ev);

    bench::banner("Figure 22: gcc1, 50ns, exclusive direct-mapped L2");
    auto pts_ex_dm = ex.sweep(Benchmark::Gcc1,
                              assume(1, TwoLevelPolicy::Exclusive));
    bench::printPoints("gcc1-excl-dm", pts_ex_dm);
    Envelope ex_dm = Explorer::envelopeOf(pts_ex_dm);
    std::printf("\nenvelope:\n");
    bench::printEnvelope("gcc1-excl-dm", ex_dm);

    bench::banner("Figure 23: gcc1, 50ns, exclusive 4-way L2");
    auto pts_ex_4w = ex.sweep(Benchmark::Gcc1,
                              assume(4, TwoLevelPolicy::Exclusive));
    bench::printPoints("gcc1-excl-4way", pts_ex_4w);
    Envelope ex_4w = Explorer::envelopeOf(pts_ex_4w);
    std::printf("\nenvelope:\n");
    bench::printEnvelope("gcc1-excl-4way", ex_4w);

    bench::banner("Figures 24-26: other workloads, exclusive 4-way L2 "
                  "(envelopes)");
    for (Benchmark b :
         {Benchmark::Doduc, Benchmark::Espresso, Benchmark::Fpppp,
          Benchmark::Li, Benchmark::Eqntott, Benchmark::Tomcatv}) {
        const char *name = Workloads::info(b).name;
        Envelope e = Explorer::envelopeOf(
            ex.sweep(b, assume(4, TwoLevelPolicy::Exclusive)));
        std::printf("\n-- %s --\n", name);
        bench::printEnvelope(name, e);
    }

    bench::banner("Section 8 claims (gcc1, mean envelope gaps in ns; "
                  "negative = first is better)");
    Envelope in_dm = Explorer::envelopeOf(
        ex.sweep(Benchmark::Gcc1, assume(1, TwoLevelPolicy::Inclusive)));
    Envelope in_4w = Explorer::envelopeOf(
        ex.sweep(Benchmark::Gcc1, assume(4, TwoLevelPolicy::Inclusive)));
    bench::plotEnvelopes("Figures 5/22/23: gcc1 @ 50ns",
                         {{"inclusive 4-way (Fig5)", in_4w},
                          {"exclusive DM (Fig22)", ex_dm},
                          {"exclusive 4-way (Fig23)", ex_4w}});
    std::printf("\n");
    Table t({"comparison", "gap_ns", "paper_expectation"});
    t.beginRow();
    t.cell("excl-DM vs incl-DM");
    t.cell(ex_dm.meanGapAgainst(in_dm), 3);
    t.cell("negative (Fig22 below Fig9)");
    t.beginRow();
    t.cell("excl-DM vs incl-4way");
    t.cell(ex_dm.meanGapAgainst(in_4w), 3);
    t.cell("about zero (comparable)");
    t.beginRow();
    t.cell("excl-4way vs incl-4way");
    t.cell(ex_4w.meanGapAgainst(in_4w), 3);
    t.cell("negative (Fig23 below Fig5)");
    t.beginRow();
    t.cell("excl-4way vs excl-DM");
    t.cell(ex_4w.meanGapAgainst(ex_dm), 3);
    t.cell("negative (combining helps)");
    t.printAscii(std::cout);

    // Per-workload swap statistics: exclusivity in action.
    bench::banner("Exclusive-policy swap rates (8:64 configuration)");
    Table st({"workload", "l1_misses", "l2_hits", "swaps",
              "swaps_per_l2hit"});
    for (Benchmark b : Workloads::all()) {
        SystemConfig c;
        c.l1Bytes = 8 * 1024;
        c.l2Bytes = 64 * 1024;
        c.assume = assume(4, TwoLevelPolicy::Exclusive);
        HierarchyStats s = ev.tryMissStats(b, c).value();
        st.beginRow();
        st.cell(Workloads::info(b).name);
        st.cell(s.l1Misses());
        st.cell(s.l2Hits);
        st.cell(s.swaps);
        st.cell(safeRatio(static_cast<double>(s.swaps),
                          static_cast<double>(s.l2Hits)), 3);
    }
    st.printAscii(std::cout);
    return 0;
}
