/**
 * @file
 * Extension experiment: the address-translation advantage (paper §1,
 * advantage four). Primary caches no larger than the page size can
 * be indexed in parallel with the TLB lookup; bigger single-level
 * caches must serialize translation (or pay associativity/aliasing
 * tricks). In a two-level system the L1 can stay <= page size while
 * the on-chip capacity lives in the physically-addressed L2, which
 * has "plenty of time" to translate during the L1 miss.
 *
 * The driver prices a translation-serialization penalty onto the
 * baseline TPI model: configurations whose L1 exceeds the page size
 * add one TLB-access time (taken from the timing model on a
 * TLB-sized array) to the effective cycle time. TLB miss costs are
 * added for both.
 */

#include <iostream>

#include "bench_common.hh"
#include "util/units.hh"
#include "vm/tlb.hh"

using namespace tlc;

int
main()
{
    MissRateEvaluator ev;
    Explorer ex(ev);
    const std::uint32_t page = 4096;
    const TlbParams tlb_params{64, 0, page, ReplPolicy::LRU};
    const double tlb_miss_penalty_ns = 40.0; // software/table walk

    // TLB lookup time: a 64-entry CAM-ish structure is comparable to
    // a small tag array; price it as a 1 KB direct-mapped array's
    // tag path.
    const double tlb_ns =
        0.5 * ex.timingOf(1_KiB, 1, 16).accessNs;

    bench::banner("Address translation and the page-size rule "
                  "(4KB pages, 64-entry TLB)");
    std::printf("TLB lookup %.2f ns; serialization applies when L1 > "
                "%u B (paper Section 1, advantage 4)\n\n", tlb_ns, page);

    Table t({"workload", "config", "parallel?", "tlb_missrate",
             "tpi_base_ns", "tpi_with_vm_ns", "penalty_pct"});
    for (Benchmark b :
         {Benchmark::Gcc1, Benchmark::Li, Benchmark::Tomcatv}) {
        TlbRunStats ts = runTlb(tlb_params, *ev.tryTrace(b).value(),
                                ev.warmupRefs());
        const std::uint64_t l1s[] = {4_KiB, 32_KiB};
        for (std::uint64_t l1 : l1s) {
            for (std::uint64_t l2 : {std::uint64_t{0}, 8 * l1}) {
                if (l2 > 256_KiB)
                    continue;
                SystemConfig c;
                c.l1Bytes = l1;
                c.l2Bytes = l2;
                DesignPoint p = ex.evaluate(b, c);

                bool parallel = Tlb::parallelLookupPossible(l1, page);
                // Serialized translation stretches every cycle by the
                // TLB time; parallel translation is free. TLB misses
                // cost a table walk either way.
                double cycle_stretch = parallel ? 0.0 : tlb_ns;
                double per_instr_refs =
                    static_cast<double>(p.miss.totalRefs()) /
                    static_cast<double>(p.miss.instrRefs);
                double tpi_vm = p.tpi.tpi + cycle_stretch +
                    ts.missRate() * per_instr_refs *
                        tlb_miss_penalty_ns;

                t.beginRow();
                t.cell(Workloads::info(b).name);
                t.cell(c.label());
                t.cell(parallel ? "yes" : "no");
                t.cell(ts.missRate(), 5);
                t.cell(p.tpi.tpi, 3);
                t.cell(tpi_vm, 3);
                t.cell(100.0 * (tpi_vm - p.tpi.tpi) / p.tpi.tpi, 1);
            }
        }
    }
    t.printAscii(std::cout);
    std::printf("\nReading: a 4:32 two-level system keeps the L1 at "
                "the page size (zero serialization penalty) while "
                "matching the capacity of a 32K single-level system "
                "that pays the penalty on every cycle.\n");
    return 0;
}
