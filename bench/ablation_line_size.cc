/**
 * @file
 * Ablation: line size. The paper fixes 16-byte lines throughout;
 * this driver re-prices a mid-range two-level system with 32 B and
 * 64 B lines (miss penalty formulas scale with the number of 8-byte
 * transfers) to show how the 16 B assumption situates the results.
 *
 * Note the TPI model's transfer terms assume 16 B lines (2 chunks);
 * for larger lines the penalty is recomputed here explicitly.
 */

#include <iostream>

#include "bench_common.hh"
#include "util/units.hh"

using namespace tlc;

namespace {

/** TPI with line-size-aware transfer counts (chunks of 8 bytes). */
double
tpiForLine(const HierarchyStats &s, double t1, double t2raw,
           double offchip, std::uint32_t line_bytes)
{
    double chunks = line_bytes / 8.0;
    double t2 = roundUpToMultiple(t2raw, t1);
    double toff = roundUpToMultiple(offchip, t1);
    double base = static_cast<double>(s.instrRefs) * t1;
    double hit = static_cast<double>(s.l2Hits) * (chunks * t2 + t1);
    double miss = static_cast<double>(s.l2Misses) *
        (toff + (chunks + 1) * t2 + t1);
    return (base + hit + miss) / static_cast<double>(s.instrRefs);
}

} // namespace

int
main()
{
    MissRateEvaluator ev;
    Explorer ex(ev);

    bench::banner("Ablation: line size (8:64, 4-way, 50ns, inclusive)");
    Table t({"workload", "line", "l1_missrate", "global_missrate",
             "tpi_ns"});
    for (Benchmark b : Workloads::all()) {
        for (std::uint32_t line : {16u, 32u, 64u}) {
            SystemConfig c;
            c.l1Bytes = 8_KiB;
            c.l2Bytes = 64_KiB;
            c.assume.lineBytes = line;
            HierarchyStats s = ev.tryMissStats(b, c).value();
            const TimingResult &l1t = ex.timingOf(8_KiB, 1, line);
            const TimingResult &l2t = ex.timingOf(64_KiB, 4, line);
            t.beginRow();
            t.cell(Workloads::info(b).name);
            t.cell(line);
            t.cell(s.l1MissRate(), 4);
            t.cell(s.globalMissRate(), 4);
            t.cell(tpiForLine(s, l1t.cycleNs, l2t.cycleNs, 50.0, line),
                   3);
        }
    }
    t.printAscii(std::cout);
    std::printf("\nExpectation: longer lines cut miss RATES (spatial "
                "locality) but pay more transfer cycles per miss; "
                "16B is a balanced choice for these penalties.\n");
    return 0;
}
