/**
 * @file
 * Figure 1: first-level cache access and cycle times vs chip area.
 *
 * The paper plots, for split direct-mapped L1 pairs of 1 KB-256 KB
 * (per side, 16 B lines, 0.5 µm technology), the minimum access and
 * cycle times found by the organization search against the rbe area
 * of the configuration.
 */

#include <iostream>

#include "bench_common.hh"
#include "util/units.hh"

using namespace tlc;

int
main()
{
    bench::banner("Figure 1: L1 access and cycle times (DM, 16B lines)");
    AccessTimeModel timing;
    AreaModel area;

    Table t({"l1_size", "area_rbe_pair", "access_ns", "cycle_ns",
             "data_org", "tag_org"});
    for (std::uint64_t s : DesignSpace::l1Sizes()) {
        SramGeometry g{s, 16, 1, 32, 64};
        TimingResult r = timing.optimize(g);
        double a = 2.0 * area.area(g, r.dataOrg, r.tagOrg);
        t.beginRow();
        t.cell(formatSize(s));
        t.cell(a, 0);
        t.cell(r.accessNs, 3);
        t.cell(r.cycleNs, 3);
        t.cell(r.dataOrg.toString());
        t.cell(r.tagOrg.toString());
    }
    t.printAscii(std::cout);

    double c1 = timing.optimize(SramGeometry{1_KiB, 16, 1, 32, 64}).cycleNs;
    double c256 =
        timing.optimize(SramGeometry{256_KiB, 16, 1, 32, 64}).cycleNs;
    std::printf("\ncycle-time spread 1K -> 256K: %.2fx "
                "(paper Section 2.1: about 1.8x)\n", c256 / c1);
    return 0;
}
